// Unit tests for palu/fit: regression, Brent, Nelder–Mead, LM, power-law
// MLE, and the modified Zipf–Mandelbrot model + fitter.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/fit/brent.hpp"
#include "palu/fit/levmar.hpp"
#include "palu/fit/linreg.hpp"
#include "palu/fit/nelder_mead.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {
namespace {

TEST(LinearRegression, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-11);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-10);
}

TEST(LinearRegression, NoisyLineWithinErrorBars) {
  Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.1);
    y.push_back(1.0 + 3.0 * i * 0.1 + (rng.uniform() - 0.5));
  }
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 4.0 * fit.slope_stderr);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(WeightedRegression, ZeroWeightPointsAreIgnored) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 100.0};
  const std::vector<double> y = {0.0, 1.0, 2.0, -999.0};
  const std::vector<double> w = {1.0, 1.0, 1.0, 0.0};
  const LinearFit fit = weighted_linear_regression(x, y, w);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
  EXPECT_EQ(fit.n, 3u);
}

TEST(WeightedRegression, HeavyWeightDominates) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {0.0, 10.0, 4.0};
  const std::vector<double> w = {1e6, 1.0, 1e6};
  const LinearFit fit = weighted_linear_regression(x, y, w);
  EXPECT_NEAR(fit.slope, 2.0, 1e-3);
}

TEST(WeightedRegression, RejectsDegenerateInputs) {
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_THROW(weighted_linear_regression(x, y, w), palu::InvalidArgument);
  const std::vector<double> x1 = {1.0}, y1 = {2.0}, w1 = {1.0};
  EXPECT_THROW(weighted_linear_regression(x1, y1, w1),
               palu::InvalidArgument);
  const std::vector<double> w_neg = {1.0, -1.0};
  EXPECT_THROW(weighted_linear_regression(x, y, w_neg),
               palu::InvalidArgument);
}

TEST(BrentRoot, FindsSimpleRoots) {
  EXPECT_NEAR(brent_root([](double x) { return x * x - 2.0; }, 0.0, 2.0),
              std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(brent_root([](double x) { return std::cos(x); }, 0.0, 3.0),
              std::numbers::pi / 2.0, 1e-10);
}

TEST(BrentRoot, AcceptsRootAtEndpoint) {
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(BrentRoot, RejectsNonBracketingInterval) {
  EXPECT_THROW(
      brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      palu::InvalidArgument);
}

TEST(BrentMinimize, FindsQuadraticMinimum) {
  const double x = brent_minimize(
      [](double t) { return (t - 1.37) * (t - 1.37) + 5.0; }, -10.0, 10.0);
  EXPECT_NEAR(x, 1.37, 1e-8);
}

TEST(BrentMinimize, NonSmoothObjective) {
  const double x =
      brent_minimize([](double t) { return std::abs(t - 0.25); }, -4.0, 4.0);
  EXPECT_NEAR(x, 0.25, 1e-7);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto rosenbrock = [](const std::vector<double>& v) {
    const double a = 1.0 - v[0];
    const double b = v[1] - v[0] * v[0];
    return a * a + 100.0 * b * b;
  };
  const auto res = nelder_mead(rosenbrock, {-1.2, 1.0});
  EXPECT_NEAR(res.x[0], 1.0, 1e-4);
  EXPECT_NEAR(res.x[1], 1.0, 1e-4);
  EXPECT_LT(res.value, 1e-8);
}

TEST(NelderMead, HandlesInfiniteRejectionRegions) {
  // Constrained quadratic: +inf outside x > 0.
  const auto f = [](const std::vector<double>& v) {
    if (v[0] <= 0.0) return std::numeric_limits<double>::infinity();
    return (std::log(v[0]) - 1.0) * (std::log(v[0]) - 1.0);
  };
  const auto res = nelder_mead(f, {0.5});
  EXPECT_NEAR(res.x[0], std::exp(1.0), 1e-4);
}

TEST(NelderMead, FourDimensionalSphere) {
  const auto f = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double d = v[i] - static_cast<double>(i);
      acc += d * d;
    }
    return acc;
  };
  const auto res = nelder_mead(f, {5.0, 5.0, 5.0, 5.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(res.x[i], static_cast<double>(i), 1e-4);
  }
}

TEST(LevenbergMarquardt, FitsExponentialDecay) {
  // y = a·exp(−b·t) with a=2, b=0.5.
  std::vector<double> t, y;
  for (int i = 0; i < 30; ++i) {
    t.push_back(i * 0.3);
    y.push_back(2.0 * std::exp(-0.5 * i * 0.3));
  }
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * t[i]) - y[i];
    }
    return r;
  };
  const auto res = levenberg_marquardt(residuals, {1.0, 1.0});
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 0.5, 1e-6);
  EXPECT_LT(res.chi_squared, 1e-12);
}

TEST(LevenbergMarquardt, LinearProblemOneHop) {
  // Linear residuals: LM solves in very few iterations.
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 3.0, p[1] + 1.0, p[0] + p[1] - 2.0};
  };
  const auto res = levenberg_marquardt(residuals, {0.0, 0.0});
  EXPECT_LT(res.iterations, 20);
  EXPECT_NEAR(res.x[0], 3.0, 1e-6);
  EXPECT_NEAR(res.x[1], -1.0, 1e-6);
}

TEST(LevenbergMarquardt, RequiresEnoughResiduals) {
  const auto residuals = [](const std::vector<double>&) {
    return std::vector<double>{0.0};
  };
  EXPECT_THROW(levenberg_marquardt(residuals, {1.0, 2.0}),
               palu::InvalidArgument);
}

// ---------------------------------------------------------------- power law

stats::DegreeHistogram synthetic_zeta_sample(double alpha, Degree xmin,
                                             Count n, std::uint64_t seed) {
  rng::BoundedZipfSampler zipf(alpha, xmin, 1u << 22);
  Rng rng(seed);
  stats::DegreeHistogram h;
  for (Count i = 0; i < n; ++i) h.add(zipf(rng));
  return h;
}

class PowerLawRecovery : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecovery, FixedXminAlphaWithinError) {
  const double alpha = GetParam();
  const auto h = synthetic_zeta_sample(alpha, 1, 60000, 99);
  const PowerLawFit fit = fit_power_law_fixed_xmin(h, 1);
  EXPECT_NEAR(fit.alpha, alpha, 5.0 * fit.alpha_stderr + 0.02)
      << "alpha=" << alpha;
  EXPECT_EQ(fit.xmin, 1u);
  EXPECT_EQ(fit.tail_size, 60000u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerLawRecovery,
                         ::testing::Values(1.5, 1.8, 2.0, 2.5, 3.0));

TEST(PowerLaw, XminScanFindsTrueCutoff) {
  // Mixture: uniform "noise" mass on 1..4, zeta tail from 5 up.
  Rng rng(3);
  rng::BoundedZipfSampler tail(2.2, 5, 1u << 20);
  stats::DegreeHistogram h;
  for (int i = 0; i < 30000; ++i) h.add(1 + rng.uniform_index(4));
  for (int i = 0; i < 30000; ++i) h.add(tail(rng));
  const PowerLawFit fit = fit_power_law(h);
  EXPECT_GE(fit.xmin, 4u);
  EXPECT_LE(fit.xmin, 10u);
  EXPECT_NEAR(fit.alpha, 2.2, 0.1);
}

TEST(PowerLaw, KsSmallForTrueModel) {
  const auto h = synthetic_zeta_sample(2.0, 1, 40000, 7);
  const PowerLawFit fit = fit_power_law_fixed_xmin(h, 1);
  // Expected KS for a correct model ~ 1/sqrt(n).
  EXPECT_LT(fit.ks_statistic, 3.0 / std::sqrt(40000.0));
}

TEST(PowerLaw, ZetaTailCdfProperties) {
  EXPECT_DOUBLE_EQ(zeta_tail_cdf(2.0, 5, 4), 0.0);
  const double at_min = zeta_tail_cdf(2.0, 5, 5);
  EXPECT_GT(at_min, 0.0);
  EXPECT_LT(at_min, 1.0);
  EXPECT_NEAR(zeta_tail_cdf(2.0, 5, 1u << 26), 1.0, 1e-6);
  // Monotone.
  double prev = 0.0;
  for (Degree d = 5; d < 50; ++d) {
    const double c = zeta_tail_cdf(2.0, 5, d);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(PowerLaw, DegenerateDataThrows) {
  stats::DegreeHistogram h;
  EXPECT_THROW(fit_power_law(h), palu::DataError);
  h.add(3, 100);  // single-value support
  EXPECT_THROW(fit_power_law_fixed_xmin(h, 1), palu::DataError);
}

TEST(PowerLaw, BootstrapAcceptsTrueModel) {
  const auto h = synthetic_zeta_sample(2.3, 1, 3000, 17);
  const PowerLawFit fit = fit_power_law_fixed_xmin(h, 1);
  Rng rng(55);
  ThreadPool pool(2);
  const double p = bootstrap_gof_pvalue(h, fit, 40, rng, pool);
  // True-model data should rarely be rejected (CSN threshold 0.1).
  EXPECT_GT(p, 0.1);
}

TEST(PowerLaw, BootstrapRejectsPoissonData) {
  Rng rng(21);
  stats::DegreeHistogram h;
  for (int i = 0; i < 5000; ++i) {
    h.add(1 + rng::sample_poisson(rng, 6.0));
  }
  const PowerLawFit fit = fit_power_law_fixed_xmin(h, 1);
  ThreadPool pool(2);
  Rng boot_rng(23);
  const double p = bootstrap_gof_pvalue(h, fit, 40, boot_rng, pool);
  EXPECT_LT(p, 0.1);
}

// ------------------------------------------------------- Zipf–Mandelbrot

TEST(ZipfMandelbrot, PmfNormalizes) {
  for (double delta : {0.0, 0.5, 3.0}) {
    const ZipfMandelbrot zm(2.0, delta, 5000);
    double total = 0.0;
    for (Degree d = 1; d <= 5000; ++d) total += zm.pmf(d);
    EXPECT_NEAR(total, 1.0, 1e-10) << "delta=" << delta;
  }
}

TEST(ZipfMandelbrot, CdfMatchesPartialPmfSums) {
  const ZipfMandelbrot zm(1.7, 0.8, 256);
  double running = 0.0;
  for (Degree d = 1; d <= 256; ++d) {
    running += zm.pmf(d);
    EXPECT_NEAR(zm.cdf(d), running, 1e-11);
  }
  EXPECT_NEAR(zm.cdf(256), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(zm.cdf(0), 0.0);
  EXPECT_NEAR(zm.cdf(100000), 1.0, 1e-12);  // clamps beyond dmax
}

TEST(ZipfMandelbrot, DeltaGradientIdentity) {
  // ∂_δ ρ = −α·ρ(d; α+1, δ) (the identity stated in Section II-B).
  const ZipfMandelbrot zm(2.2, 0.6, 100);
  const ZipfMandelbrot zm_up(3.2, 0.6, 100);
  for (double d : {1.0, 2.0, 10.0, 64.0}) {
    EXPECT_NEAR(zm.unnormalized_delta_gradient(d),
                -2.2 * zm_up.unnormalized(d), 1e-14);
  }
  // And against a numerical derivative.
  const double h = 1e-6;
  const ZipfMandelbrot plus(2.2, 0.6 + h, 100);
  const ZipfMandelbrot minus(2.2, 0.6 - h, 100);
  const double fd =
      (plus.unnormalized(10.0) - minus.unnormalized(10.0)) / (2.0 * h);
  EXPECT_NEAR(zm.unnormalized_delta_gradient(10.0), fd, 1e-8);
}

TEST(ZipfMandelbrot, DeltaControlsHeadAlphaControlsTail) {
  // Raising δ suppresses p(1); the tail ratio p(2^k)/p(2^{k+1}) is set by α.
  const ZipfMandelbrot flat(2.0, 5.0, 1u << 14);
  const ZipfMandelbrot sharp(2.0, 0.0, 1u << 14);
  EXPECT_LT(flat.pmf(1), sharp.pmf(1));
  const double tail_ratio =
      flat.pmf(1 << 12) / flat.pmf(1 << 13);
  EXPECT_NEAR(tail_ratio, std::pow(2.0, 2.0), 0.01);
}

TEST(ZipfMandelbrot, PooledSumsToOne) {
  const ZipfMandelbrot zm(2.4, 1.5, 777);  // non-power-of-two dmax
  const auto pooled = zm.pooled();
  EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-10);
  EXPECT_EQ(pooled.num_bins(), stats::LogBinned::bin_index(777) + 1);
  // Bin 0 is exactly pmf(1).
  EXPECT_NEAR(pooled[0], zm.pmf(1), 1e-12);
}

TEST(ZipfMandelbrot, RejectsBadParameters) {
  EXPECT_THROW(ZipfMandelbrot(0.0, 0.5, 10), palu::InvalidArgument);
  EXPECT_THROW(ZipfMandelbrot(2.0, -1.0, 10), palu::InvalidArgument);
  EXPECT_THROW(ZipfMandelbrot(2.0, 0.5, 0), palu::InvalidArgument);
  const ZipfMandelbrot zm(2.0, 0.5, 10);
  EXPECT_THROW(zm.pmf(0), palu::InvalidArgument);
  EXPECT_THROW(zm.pmf(11), palu::InvalidArgument);
}

struct ZmCase {
  double alpha;
  double delta;
};

class ZmFitRecovery : public ::testing::TestWithParam<ZmCase> {};

TEST_P(ZmFitRecovery, RecoversParametersFromExactPooled) {
  const auto [alpha, delta] = GetParam();
  const Degree dmax = 1u << 14;
  const ZipfMandelbrot truth(alpha, delta, dmax);
  const auto result = fit_zipf_mandelbrot(truth.pooled(), dmax);
  EXPECT_NEAR(result.alpha, alpha, 0.02) << "alpha";
  EXPECT_NEAR(result.delta, delta, 0.05 * (1.0 + delta)) << "delta";
  EXPECT_LT(result.objective, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZmFitRecovery,
                         ::testing::Values(ZmCase{1.6, 0.0}, ZmCase{2.0, 0.5},
                                           ZmCase{2.0, 2.0}, ZmCase{2.5, 1.0},
                                           ZmCase{3.0, 0.2},
                                           ZmCase{2.2, 4.0}));

TEST(ZmFit, SigmaWeightingFavorsTightBins) {
  const Degree dmax = 1u << 10;
  const ZipfMandelbrot truth(2.0, 1.0, dmax);
  auto target_mass = truth.pooled().mass();
  // Corrupt the last bin heavily but mark it as high-σ.
  std::vector<double> sigma(target_mass.size(), 1e-4);
  target_mass.back() += 0.05;
  sigma.back() = 10.0;
  ZmFitOptions opts;
  opts.bin_sigma = sigma;
  const auto result =
      fit_zipf_mandelbrot(stats::LogBinned(target_mass), dmax, opts);
  EXPECT_NEAR(result.alpha, 2.0, 0.05);
  EXPECT_NEAR(result.delta, 1.0, 0.1);
}

TEST(ZipfMandelbrot, SamplerMatchesPmf) {
  const ZipfMandelbrot zm(2.0, 1.5, 512);
  auto sampler = zm.sampler();
  Rng rng(404);
  std::vector<Count> counts(513, 0);
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    const auto d = sampler(rng);
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, 512u);
    ++counts[d];
  }
  for (Degree d = 1; d <= 8; ++d) {
    const double expected = zm.pmf(d) * kN;
    EXPECT_NEAR(static_cast<double>(counts[d]), expected,
                6.0 * std::sqrt(expected))
        << "d=" << d;
  }
}

TEST(ZmFit, RejectsTooFewBins) {
  EXPECT_THROW(
      fit_zipf_mandelbrot(stats::LogBinned({0.5, 0.5}), 1024),
      palu::InvalidArgument);
}

}  // namespace
}  // namespace palu::fit
