#include "palu/rng/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"

namespace palu::rng {
namespace {

// Poisson by multiplicative inversion; expected iterations = λ.
std::uint64_t poisson_inversion(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double prod = 1.0;
  std::uint64_t k = 0;
  for (;;) {
    prod *= rng.uniform_positive();
    if (prod <= limit) return k;
    ++k;
  }
}

// Hörmann's PTRS transformed-rejection Poisson sampler; exact for λ >= 10.
// W. Hörmann, "The transformed rejection method for generating Poisson
// random variables", Insurance: Mathematics and Economics 12 (1993).
std::uint64_t poisson_ptrs(Rng& rng, double lambda) {
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_lambda = std::log(lambda);
  for (;;) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform_positive();
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (kf < 0.0) continue;
    const auto k = static_cast<std::uint64_t>(kf);
    if (us >= 0.07 && v <= v_r) return k;
    if (us < 0.013 && v > us) continue;
    const double lhs = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs =
        kf * log_lambda - lambda - math::log_factorial(k);
    if (lhs <= rhs) return k;
  }
}

// Binomial by waiting-time inversion; expected iterations = n·p + 1.
std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  const double log_q = std::log1p(-p);
  std::uint64_t count = 0;
  double x = 0.0;
  for (;;) {
    // Skip a Geometric(p)-distributed run of failures.
    x += std::floor(std::log(rng.uniform_positive()) / log_q) + 1.0;
    if (x > static_cast<double>(n)) return count;
    ++count;
  }
}

// Hörmann's BTRS transformed-rejection binomial sampler; exact for
// n·p ≥ 10, p ≤ 0.5.
std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double spq = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / (1.0 - p));
  const double m = std::floor((nd + 1.0) * p);
  const double h = math::log_factorial(static_cast<std::uint64_t>(m)) +
                   math::log_factorial(n - static_cast<std::uint64_t>(m));
  for (;;) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform_positive();
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + c);
    if (kf < 0.0 || kf > nd) continue;
    const auto k = static_cast<std::uint64_t>(kf);
    if (us >= 0.07 && v <= v_r) return k;
    const double lhs = std::log(v * alpha / (a / (us * us) + b));
    const double rhs = h - math::log_factorial(k) -
                       math::log_factorial(n - k) + (kf - m) * lpq;
    if (lhs <= rhs) return k;
  }
}

}  // namespace

std::uint64_t sample_poisson(Rng& rng, double lambda) {
  PALU_CHECK(lambda >= 0.0, "sample_poisson: requires lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 10.0) return poisson_inversion(rng, lambda);
  return poisson_ptrs(rng, lambda);
}

std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0, "sample_binomial: requires 0 <= p <= 1");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  const double nq = static_cast<double>(n) * q;
  const std::uint64_t k =
      nq < 10.0 ? binomial_inversion(rng, n, q) : binomial_btrs(rng, n, q);
  return flipped ? n - k : k;
}

std::uint64_t sample_geometric(Rng& rng, double q) {
  PALU_CHECK(q > 0.0 && q <= 1.0, "sample_geometric: requires 0 < q <= 1");
  if (q == 1.0) return 1;
  const double u = rng.uniform_positive();
  return 1 + static_cast<std::uint64_t>(
                 std::floor(std::log(u) / std::log1p(-q)));
}

BoundedZipfSampler::BoundedZipfSampler(double alpha, std::uint64_t dmax)
    : BoundedZipfSampler(alpha, 1, dmax) {}

BoundedZipfSampler::BoundedZipfSampler(double alpha, std::uint64_t dmin,
                                       std::uint64_t dmax)
    : alpha_(alpha), dmin_(dmin), dmax_(dmax) {
  PALU_CHECK(alpha > 0.0, "BoundedZipfSampler: requires alpha > 0");
  PALU_CHECK(dmin >= 1 && dmin <= dmax,
             "BoundedZipfSampler: requires 1 <= dmin <= dmax");
  const double lo = static_cast<double>(dmin);
  steep_ = alpha >= 8.0;
  if (steep_) {
    double total = 0.0;
    std::uint64_t d = dmin;
    for (; d <= dmax && d < dmin + 4096; ++d) {
      const double term = std::pow(static_cast<double>(d), -alpha);
      total += term;
      if (term < total * 1e-18) break;
    }
    total_mass_ = total;
    return;
  }
  h_integral_lo_ = h_integral(lo + 0.5) - h(lo);
  h_integral_hi_ = h_integral(static_cast<double>(dmax) + 0.5);
  s_ = (lo + 1.0) -
       h_integral_inverse(h_integral(lo + 1.5) - h(lo + 1.0));
}

std::uint64_t BoundedZipfSampler::sample_steep(Rng& rng) const {
  if (total_mass_ <= 0.0) return dmin_;  // mass underflowed: δ at dmin
  const double target = rng.uniform() * total_mass_;
  double acc = 0.0;
  for (std::uint64_t d = dmin_; d <= dmax_; ++d) {
    acc += std::pow(static_cast<double>(d), -alpha_);
    if (acc >= target) return d;
  }
  return dmax_;
}

double BoundedZipfSampler::h(double x) const { return std::pow(x, -alpha_); }

double BoundedZipfSampler::h_integral(double x) const {
  // ∫ x^{-α} dx; the α == 1 limit is log.
  const double log_x = std::log(x);
  if (std::abs(alpha_ - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha_) * log_x) / (1.0 - alpha_);
}

double BoundedZipfSampler::h_integral_inverse(double y) const {
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(y);
  double t = y * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard rounding below the pole
  return std::exp(std::log1p(t) / (1.0 - alpha_));
}

std::uint64_t BoundedZipfSampler::operator()(Rng& rng) const {
  if (dmin_ == dmax_) return dmin_;
  if (steep_) return sample_steep(rng);
  for (;;) {
    const double u =
        h_integral_hi_ + rng.uniform() * (h_integral_lo_ - h_integral_hi_);
    const double x = h_integral_inverse(u);
    double kf = std::floor(x + 0.5);
    kf = std::clamp(kf, static_cast<double>(dmin_),
                    static_cast<double>(dmax_));
    const auto k = static_cast<std::uint64_t>(kf);
    if (kf - x <= s_ || u >= h_integral(kf + 0.5) - h(kf)) {
      return k;
    }
  }
}

AliasSampler::AliasSampler(const std::vector<double>& weights,
                           std::uint64_t offset)
    : offset_(offset) {
  PALU_CHECK(!weights.empty(), "AliasSampler: empty weight vector");
  PALU_CHECK(weights.size() < (std::uint64_t{1} << 32),
             "AliasSampler: too many outcomes");
  double total = 0.0;
  for (double w : weights) {
    PALU_CHECK(w >= 0.0 && std::isfinite(w),
               "AliasSampler: weights must be finite and non-negative");
    total += w;
  }
  PALU_CHECK(total > 0.0, "AliasSampler: weights sum to zero");
  const std::size_t n = weights.size();
  prob_.resize(n);
  alias_.assign(n, 0);
  // Scaled probabilities; Vose's stable two-worklist construction.
  std::vector<double> scaled(n);
  std::deque<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.front();
    small.pop_front();
    const std::uint32_t l = large.front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_front();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : small) prob_[i] = 1.0;
  for (std::uint32_t i : large) prob_[i] = 1.0;
}

std::uint64_t AliasSampler::operator()(Rng& rng) const {
  const std::uint64_t i = rng.uniform_index(prob_.size());
  const bool keep = rng.uniform() < prob_[i];
  return offset_ + (keep ? i : alias_[i]);
}

}  // namespace palu::rng
