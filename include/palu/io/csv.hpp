// CSV export of the library's result objects, for plotting the paper's
// figures with external tooling.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/fit/model_zoo.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::io {

/// "d,pmf,cdf" rows over the empirical support.
void write_distribution_csv(std::ostream& out,
                            const stats::EmpiricalDistribution& dist);

/// "bin,d_i,mass[,sigma]" rows; `sigma` may be empty or per-bin.
void write_pooled_csv(std::ostream& out, const stats::LogBinned& pooled,
                      std::span<const double> sigma = {});

/// "family,log_likelihood,aic,delta_aic,params..." rows, ranked.
void write_model_comparison_csv(
    std::ostream& out, std::span<const fit::ModelComparison> ranking);

/// A Fig-3-style panel: "bin,d_i,measured,sigma,model" rows — everything
/// a plotting script needs for one measured-vs-fit comparison.
void write_panel_csv(std::ostream& out, std::span<const double> measured,
                     std::span<const double> sigma,
                     const stats::LogBinned& model);

/// "d,count" rows; the interchange format for degree data (public degree
/// datasets usually ship exactly this).
void write_histogram_csv(std::ostream& out,
                         const stats::DegreeHistogram& h);

/// Parses "d,count" rows; a first line equal to "d,count" is treated as a
/// header; blank lines and '#' comments are skipped.  Throws
/// palu::DataError with the line number on malformed input.
stats::DegreeHistogram read_histogram_csv(std::istream& in);

/// Histogram plus the account of what was read/dropped/repaired.
struct HistogramReadResult {
  stats::DegreeHistogram histogram;
  IngestReport report;
};

/// Policy-aware "d,count" reader.  Under kRepair the first two unsigned
/// integer runs on a malformed row are salvaged as (d, count); under kSkip
/// the row is dropped and counted against the error budget.
HistogramReadResult read_histogram_csv(std::istream& in,
                                       const IngestOptions& opts);

}  // namespace palu::io
