// Fixture: a stale marker whose staleness diagnostic is itself
// sanctioned by a *different* marker (self-excuse is rejected, so the
// order matters: the stale-suppression allow covers the line below it).
// palu-lint-expect-clean
#include <cstdint>

// Kept deliberately while the typed-error migration of this fixture's
// imaginary caller is in flight:
// palu-lint: allow(stale-suppression)
// palu-lint: allow(typed-error)
std::uint64_t sub(std::uint64_t a, std::uint64_t b) { return a - b; }
