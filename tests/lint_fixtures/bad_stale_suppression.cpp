// Fixture: an allow() that suppresses nothing is itself a violation.
// palu-lint-expect: stale-suppression
#include <cstdint>

// palu-lint: allow(determinism)
std::uint64_t add(std::uint64_t a, std::uint64_t b) { return a + b; }
