# Empty dependencies file for palu_stats.
# This may be replaced when dependencies are built.
