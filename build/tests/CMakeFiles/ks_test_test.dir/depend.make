# Empty dependencies file for ks_test_test.
# This may be replaced when dependencies are built.
