// Unit tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "palu/cli/args.hpp"
#include "palu/common/error.hpp"

namespace palu::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValues) {
  const auto args = parse({"--nodes", "5000", "--alpha", "2.5"});
  EXPECT_EQ(args.get_int("nodes", 0), 5000);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 2.5);
}

TEST(Args, EqualsSeparatedValues) {
  const auto args = parse({"--trace=flows.txt", "--nvalid=100000"});
  EXPECT_EQ(args.get_string("trace", ""), "flows.txt");
  EXPECT_EQ(args.get_int("nvalid", 0), 100000);
}

TEST(Args, BareFlags) {
  const auto args = parse({"--csv", "--seed", "7"});
  EXPECT_TRUE(args.get_flag("csv"));
  EXPECT_FALSE(args.get_flag("verbose"));
  EXPECT_EQ(args.get_int("seed", 0), 7);
}

TEST(Args, TrailingFlag) {
  const auto args = parse({"--nvalid", "100", "--csv"});
  EXPECT_TRUE(args.get_flag("csv"));
  EXPECT_EQ(args.get_int("nvalid", 0), 100);
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_string("trace", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", -3), -3);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.25), 1.25);
}

TEST(Args, NegativeNumbersAsValues) {
  // "-3" must not be mistaken for an option.
  const auto args = parse({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(Args, RejectsMalformedInput) {
  EXPECT_THROW(parse({"loose-token"}), InvalidArgument);
  EXPECT_THROW(parse({"-x", "1"}), InvalidArgument);
}

TEST(Args, RejectsBadConversions) {
  const auto args = parse({"--n", "12x", "--f", "abc", "--flag"});
  EXPECT_THROW(args.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(args.get_double("f", 0.0), InvalidArgument);
  EXPECT_THROW(args.get_string("flag", ""), InvalidArgument);
  EXPECT_THROW(args.get_int("flag", 0), InvalidArgument);
}

TEST(Args, NamesListsEverything) {
  const auto args = parse({"--a", "1", "--b=2", "--c"});
  const auto names = args.names();
  EXPECT_EQ(names.size(), 3u);
  EXPECT_TRUE(args.has("a"));
  EXPECT_TRUE(args.has("b"));
  EXPECT_TRUE(args.has("c"));
}

TEST(Args, EmptyEqualsValue) {
  const auto args = parse({"--name="});
  EXPECT_EQ(args.get_string("name", "x"), "");
}

}  // namespace
}  // namespace palu::cli
