# Empty dependencies file for bench_model_zoo.
# This may be replaced when dependencies are built.
