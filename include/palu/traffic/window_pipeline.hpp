// Parallel multi-window analysis.
//
// The Section II methodology aggregates many consecutive windows of N_V
// valid packets and studies the per-bin mean and σ across them.  Windows
// of the synthetic stream are exchangeable (the generator is stationary),
// so they can be produced and histogrammed in parallel, one deterministic
// RNG stream per window — the library's main multi-core path for the
// Fig-3-style sweeps.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"

namespace palu::traffic {

struct WindowSweepResult {
  stats::BinnedEnsemble ensemble;   // pooled D(d_i) mean/σ across windows
  stats::DegreeHistogram merged;    // all windows' quantity merged
  Degree max_value = 0;             // d_max over all windows (Eq. 1)
  std::size_t windows = 0;
};

/// Draws `num_windows` windows of `n_valid` packets each over
/// `underlying`, histograms `quantity` per window, and reduces in window
/// order (deterministic given `seed`).  Windows are processed in parallel
/// on `pool`; window t uses the RNG stream fork(seed, t).
WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool);

}  // namespace palu::traffic
