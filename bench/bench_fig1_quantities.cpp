// Figure 1 — Streaming network traffic quantities.
//
// Regenerates the five per-window quantities (source packets, source
// fan-out, link packets, destination fan-in, destination packets) from one
// synthetic stream, printing each quantity's pooled differential
// cumulative distribution D(d_i) so the characteristic shapes (heavy d=1
// mass, power-law tails, supernode spike) are visible, then times the
// extraction of each quantity.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

const traffic::SparseCountMatrix& shared_window() {
  static const traffic::SparseCountMatrix window = []() {
    const auto params =
        core::PaluParams::solve_hubs(3.0, 0.4, 0.25, 2.0, 1.0);
    Rng rng(3);
    const auto net = core::generate_underlying(params, 60000, rng);
    traffic::RateModel rates;
    rates.kind = traffic::RateModel::Kind::kDegreeProduct;
    traffic::SyntheticTrafficGenerator stream(net.graph, rates, Rng(4));
    return stream.window(500000);
  }();
  return window;
}

void print_fig1() {
  std::printf("=== Figure 1: streaming traffic quantities, pooled D(d_i) "
              "===\n");
  std::printf("window: N_V=%llu packets, %zu unique links\n\n",
              static_cast<unsigned long long>(shared_window().total()),
              shared_window().nnz());
  for (const auto q : traffic::kAllQuantities) {
    const auto h = traffic::quantity_histogram(shared_window(), q);
    const auto pooled = stats::LogBinned::from_histogram(h);
    std::printf("%-22s (support %zu, d_max %llu)\n",
                std::string(traffic::quantity_name(q)).c_str(),
                h.support_size(),
                static_cast<unsigned long long>(h.max_degree()));
    std::printf("  bin:   ");
    for (std::uint32_t i = 0; i < pooled.num_bins(); ++i) {
      std::printf("%9llu", static_cast<unsigned long long>(
                               stats::LogBinned::bin_upper(i)));
    }
    std::printf("\n  D(d_i):");
    for (std::uint32_t i = 0; i < pooled.num_bins(); ++i) {
      std::printf("%9.5f", pooled[i]);
    }
    std::printf("\n\n");
  }
}

void BM_QuantityExtraction(benchmark::State& state) {
  const auto q = static_cast<traffic::Quantity>(state.range(0));
  const auto& window = shared_window();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::quantity_histogram(window, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(window.nnz()));
  state.SetLabel(std::string(traffic::quantity_name(q)));
}
BENCHMARK(BM_QuantityExtraction)->DenseRange(0, 4);

void BM_UndirectedDegrees(benchmark::State& state) {
  const auto& window = shared_window();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::undirected_degree_histogram(window));
  }
}
BENCHMARK(BM_UndirectedDegrees);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
