file(REMOVE_RECURSE
  "CMakeFiles/bench_window_invariance.dir/bench_window_invariance.cpp.o"
  "CMakeFiles/bench_window_invariance.dir/bench_window_invariance.cpp.o.d"
  "bench_window_invariance"
  "bench_window_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
