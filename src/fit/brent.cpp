#include "palu/fit/brent.hpp"

#include <cmath>

#include "palu/common/error.hpp"

namespace palu::fit {

double brent_root(const std::function<double(double)>& f, double a, double b,
                  const BrentOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  PALU_CHECK(fa * fb < 0.0, "brent_root: endpoints do not bracket a root");
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol =
        2.0 * 1e-16 * std::abs(b) + 0.5 * opts.tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) return b;
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;  // bisection
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += std::abs(d) > tol ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  throw ConvergenceError("brent_root: max iterations exceeded");
}

double brent_minimize(const std::function<double(double)>& f, double a,
                      double b, const BrentOptions& opts) {
  PALU_CHECK(a < b, "brent_minimize: requires a < b");
  constexpr double kGolden = 0.3819660112501051;  // (3 − √5)/2
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    const double mid = 0.5 * (a + b);
    const double tol1 = 1e-12 * std::abs(x) + opts.tolerance;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - mid) <= tol2 - 0.5 * (b - a)) return x;
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic interpolation through (v, w, x).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = x < mid ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < mid ? b : a) - x;
      d = kGolden * e;
    }
    const double u = std::abs(d) >= tol1 ? x + d : x + (d > 0 ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u < x) b = x; else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  return x;  // best point found within the iteration budget
}

}  // namespace palu::fit
