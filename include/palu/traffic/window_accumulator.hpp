// Flat per-window accumulator: the sweep fast path's replacement for
// building a fresh SparseCountMatrix (and its unordered_map marginals)
// every window.
//
// Two arena-reused open-addressing tables back the accumulator: a cell
// table over (src, dst) packet counts and a node table for per-endpoint
// marginals.  begin_window() retires the previous window by bumping an
// epoch stamp instead of clearing, so the Monte-Carlo sweep's thousands of
// windows reuse one allocation instead of churning the heap.  All six
// Quantity histograms come from a single unsorted pass over the live
// cells — no entries() copy+sort and no per-node peer sets — and produce
// histograms identical in content to quantity_histogram() on the
// equivalent SparseCountMatrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/traffic/packet.hpp"
#include "palu/traffic/quantities.hpp"

namespace palu::traffic {

class WindowAccumulator {
 public:
  WindowAccumulator();

  /// Starts a new window: drops all cells in O(1) (epoch bump) while
  /// keeping both tables' capacity for reuse.
  void begin_window();

  /// Adds `count` packets on the (src, dst) link of the current window.
  void add(NodeId src, NodeId dst, Count count = 1);

  /// Accumulates a batch of packets.
  void add_packets(std::span<const Packet> packets);

  /// Σ_ij A_t(i, j): total packets in the current window.
  Count total() const noexcept { return total_; }

  /// Number of live (src, dst) cells (the nnz of A_t).
  std::size_t nnz() const noexcept { return live_cells_.size(); }

  /// Packet count of a specific link, 0 if absent.
  Count at(NodeId src, NodeId dst) const;

  /// Histogram of one quantity over the current window, computed in a
  /// single unsorted pass; content-identical to quantity_histogram() on a
  /// SparseCountMatrix holding the same cells.  Non-const: reuses the node
  /// scratch table.
  stats::DegreeHistogram histogram(Quantity q);

 private:
  struct Cell {
    NodeId src;
    NodeId dst;
    Count count;
  };
  struct NodeSlot {
    NodeId id;
    Count packets;
    Count fan;
  };
  static constexpr std::size_t kNpos = ~std::size_t{0};

  static std::uint64_t mix_cell(NodeId src, NodeId dst) noexcept;
  static std::uint64_t mix_node(NodeId id) noexcept;

  std::size_t find_cell(NodeId src, NodeId dst) const noexcept;
  std::size_t find_or_insert_cell(NodeId src, NodeId dst);
  void grow_cells();

  void begin_node_pass();
  NodeSlot& node_slot(NodeId id);
  void grow_nodes();

  // ---- cell table (open addressing, linear probing, epoch-stamped) ----
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> cell_epoch_;
  std::vector<std::uint32_t> live_cells_;  // slot indices, insertion order
  std::uint32_t epoch_ = 1;
  std::size_t cell_mask_ = 0;  // capacity − 1 (capacity is a power of 2)
  std::size_t cell_grow_at_ = 0;
  Count total_ = 0;

  // ---- node scratch table (one histogram pass at a time) ----
  std::vector<NodeSlot> nodes_;
  std::vector<std::uint32_t> node_epoch_;
  std::vector<std::uint32_t> live_nodes_;
  std::uint32_t node_pass_ = 1;
  std::size_t node_mask_ = 0;
  std::size_t node_grow_at_ = 0;
};

}  // namespace palu::traffic
