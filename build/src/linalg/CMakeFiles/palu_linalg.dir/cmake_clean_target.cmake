file(REMOVE_RECURSE
  "libpalu_linalg.a"
)
