file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_topologies.dir/bench_fig2_topologies.cpp.o"
  "CMakeFiles/bench_fig2_topologies.dir/bench_fig2_topologies.cpp.o.d"
  "bench_fig2_topologies"
  "bench_fig2_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
