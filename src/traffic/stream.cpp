#include "palu/traffic/stream.hpp"

#include <bit>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"

namespace palu::traffic {

namespace {

/// Neumaier (Kahan–Babuška) compensated sum: a naive `total += r` over a
/// heavy-tailed Pareto rate vector silently drops the small rates' mass
/// once one giant rate dominates the accumulator, which skews every
/// normalized rate.  The running compensation keeps the error at one ulp
/// of the true sum regardless of ordering or dynamic range.
double compensated_sum(const std::vector<double>& values) {
  double sum = 0.0;
  double compensation = 0.0;
  for (const double v : values) {
    const double t = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      compensation += (sum - t) + v;
    } else {
      compensation += (v - t) + sum;
    }
    sum = t;
  }
  return sum + compensation;
}

/// Binomial(n, 1/2) for n <= 64: one RNG word, n coin flips by popcount.
/// Exact, and an order of magnitude cheaper than waiting-time inversion
/// for the small per-pair counts that dominate a count-space window.
std::uint64_t binomial_half_small(Rng& rng, std::uint64_t n) {
  const std::uint64_t mask =
      n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  return static_cast<std::uint64_t>(std::popcount(rng() & mask));
}

/// Binomial(n, 1/2) by whole-word popcounts, cheaper than a rejection
/// draw up to a few thousand trials.  Beyond kPopcountCap the O(n/64)
/// word loop loses to BTRS's O(1).
constexpr std::uint64_t kPopcountCap = 2048;

std::uint64_t binomial_half(Rng& rng, std::uint64_t n) {
  std::uint64_t k = 0;
  while (n > 64) {
    k += static_cast<std::uint64_t>(std::popcount(rng()));
    n -= 64;
  }
  return k + binomial_half_small(rng, n);
}

/// Linear-probe memo over (n_valid → value); sweeps and benches query a
/// handful of distinct window sizes, so a flat list beats a map.  Bounded
/// so a pathological caller cannot grow it without limit.
constexpr std::size_t kMemoCap = 64;

template <typename Compute>
double memoized(std::vector<std::pair<Count, double>>& memo, Count n_valid,
                Compute&& compute) {
  for (const auto& [key, value] : memo) {
    if (key == n_valid) return value;
  }
  const double value = compute();
  if (memo.size() < kMemoCap) memo.emplace_back(n_valid, value);
  return value;
}

}  // namespace

std::vector<double> make_edge_rates(const graph::Graph& g,
                                    const RateModel& model, Rng rng) {
  std::vector<double> rates(g.num_edges());
  switch (model.kind) {
    case RateModel::Kind::kUniform:
      for (double& r : rates) r = 1.0;
      break;
    case RateModel::Kind::kPareto: {
      PALU_CHECK(model.pareto_tail > 0.0,
                 "make_edge_rates: pareto_tail must be > 0");
      for (double& r : rates) {
        r = std::pow(rng.uniform_positive(), -1.0 / model.pareto_tail);
      }
      break;
    }
    case RateModel::Kind::kDegreeProduct: {
      const auto deg = g.degrees();
      const auto& edges = g.edges();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        rates[i] = static_cast<double>(deg[edges[i].u]) *
                   static_cast<double>(deg[edges[i].v]);
      }
      break;
    }
  }
  return rates;
}

SyntheticTrafficGenerator::SyntheticTrafficGenerator(
    const graph::Graph& underlying, const RateModel& rates, Rng rng,
    double forward_prob)
    : SyntheticTrafficGenerator(underlying,
                                make_edge_rates(underlying, rates, rng),
                                rng.fork(0x7a11), forward_prob) {}

SyntheticTrafficGenerator::SyntheticTrafficGenerator(
    const graph::Graph& underlying, std::vector<double> rates, Rng rng,
    double forward_prob)
    : edges_(underlying.edges()), rng_(rng), forward_prob_(forward_prob) {
  PALU_CHECK(!edges_.empty(),
             "SyntheticTrafficGenerator: underlying graph has no edges");
  PALU_CHECK(forward_prob >= 0.0 && forward_prob <= 1.0,
             "SyntheticTrafficGenerator: forward_prob out of [0, 1]");
  PALU_CHECK(rates.size() == edges_.size(),
             "SyntheticTrafficGenerator: one rate per edge required");
  rates_ = std::move(rates);
  for (const double r : rates_) {
    PALU_CHECK(r >= 0.0, "SyntheticTrafficGenerator: negative rate");
  }
  const double total = compensated_sum(rates_);
  PALU_CHECK(total > 0.0, "SyntheticTrafficGenerator: all rates zero");
  for (double& r : rates_) r /= total;
  sampler_.emplace(rates_);
}

Packet SyntheticTrafficGenerator::next() {
  const std::uint64_t e = (*sampler_)(rng_);
  const graph::Edge& edge = edges_[e];
  if (rng_.uniform() < forward_prob_) return Packet{edge.u, edge.v};
  return Packet{edge.v, edge.u};
}

void SyntheticTrafficGenerator::next_batch(std::span<Packet> out) {
  const rng::AliasSampler& sampler = *sampler_;
  for (Packet& p : out) {
    const std::uint64_t e = sampler(rng_);
    const graph::Edge& edge = edges_[e];
    p = rng_.uniform() < forward_prob_ ? Packet{edge.u, edge.v}
                                       : Packet{edge.v, edge.u};
  }
}

void SyntheticTrafficGenerator::build_counts_support() {
  // Merge edges by unordered endpoint pair.  A Multinomial category per
  // *pair* (weight = Σ rates of its parallel edges) is distributionally
  // exact, and the direction split stays a single Binomial because every
  // packet on the pair flows u → v with the same mixture probability
  //   P[u → v] = Σ_i rate_i · f_i / Σ_i rate_i,
  // where f_i is forward_prob for edges stored (u, v) and 1 − forward_prob
  // for edges stored (v, u).  Self-pairs route everything to forward.
  struct PairSlot {
    std::size_t index;      // into the SoA below (first-seen order)
    double forward_weight;  // Σ rate_i · f_i, same units as weight
  };
  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      std::uint64_t h = p.first * 0x9e3779b97f4a7c15ULL;
      h ^= p.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      return static_cast<std::size_t>(h ^ (h >> 33));
    }
  };

  std::vector<NodeId> u, v;
  std::vector<double> weight;
  std::unordered_map<std::pair<NodeId, NodeId>, PairSlot, PairHash> seen;
  seen.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const double r = rates_[i];
    if (r <= 0.0) continue;  // zero-weight edges never emit packets
    const graph::Edge& e = edges_[i];
    const auto key = e.u <= e.v ? std::make_pair(e.u, e.v)
                                : std::make_pair(e.v, e.u);
    auto [it, inserted] = seen.try_emplace(key, PairSlot{u.size(), 0.0});
    if (inserted) {
      // Canonical orientation = the first-seen stored orientation, so the
      // common duplicate-free case keeps the edge's natural (u, v).
      u.push_back(e.u);
      v.push_back(e.v);
      weight.push_back(0.0);
    }
    const std::size_t slot = it->second.index;
    weight[slot] += r;
    if (e.u == e.v) {
      it->second.forward_weight += r;  // self-pair: everything is forward
    } else if (e.u == u[slot] && e.v == v[slot]) {
      it->second.forward_weight += r * forward_prob_;
    } else {
      it->second.forward_weight += r * (1.0 - forward_prob_);
    }
  }

  std::vector<double> forward_prob(u.size());
  for (const auto& [key, slot] : seen) {
    (void)key;
    forward_prob[slot.index] =
        weight[slot.index] > 0.0 ? slot.forward_weight / weight[slot.index]
                                 : 0.0;
  }
  // The single-edge-per-pair case is by far the most common; pin its
  // forward probability to the exact ctor value so the popcount fast path
  // for forward_prob == 0.5 engages.
  if (!edges_.empty()) {
    for (std::size_t i = 0; i < forward_prob.size(); ++i) {
      if (u[i] != v[i] &&
          std::abs(forward_prob[i] - forward_prob_) < 1e-15) {
        forward_prob[i] = forward_prob_;
      }
    }
  }

  const std::size_t counts_size = weight.size();
  counts_support_.emplace(CountsSupport{
      rng::MultinomialSampler(weight), std::move(u), std::move(v),
      std::move(weight), std::move(forward_prob),
      std::vector<Count>(counts_size, 0)});
}

PairSupportView SyntheticTrafficGenerator::pair_support() {
  if (!counts_support_) build_counts_support();
  const CountsSupport& s = *counts_support_;
  return PairSupportView{std::span<const NodeId>(s.u),
                         std::span<const NodeId>(s.v),
                         std::span<const double>(s.weight),
                         std::span<const double>(s.forward_prob)};
}

void SyntheticTrafficGenerator::next_window_counts(
    Count n_valid, std::vector<EdgePacketCounts>& out) {
  if (!counts_support_) build_counts_support();
  PALU_FAILPOINT("traffic.window_counts");
  CountsSupport& s = *counts_support_;
  s.sampler(rng_, n_valid, std::span<Count>(s.counts));
  // One record per merged pair, in the fixed support order, zero rows
  // included: every per-window pass here and downstream then runs over a
  // size that depends only on the graph, never on N_V or on how many
  // pairs happened to draw packets — the flat-cost half of the counts
  // path's O(E) contract (the other half is the sampler's dense-regime
  // sequential split).
  out.resize(s.counts.size());
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    const Count c = s.counts[i];
    Count forward;
    if (c == 0) {
      forward = 0;
    } else if (s.u[i] == s.v[i] || s.forward_prob[i] >= 1.0) {
      forward = c;
    } else if (s.forward_prob[i] == 0.5 && c <= kPopcountCap) {
      forward = binomial_half(rng_, c);
    } else {
      forward = rng::sample_binomial_small(rng_, c, s.forward_prob[i]);
    }
    out[i] = EdgePacketCounts{s.u[i], s.v[i], forward, c - forward};
  }
}

SparseCountMatrix SyntheticTrafficGenerator::window(Count n_valid) {
  SparseCountMatrix a;
  for (Count i = 0; i < n_valid; ++i) {
    const Packet p = next();
    a.add(p.src, p.dst);
  }
  return a;
}

std::vector<SparseCountMatrix> SyntheticTrafficGenerator::windows(
    Count n_valid, std::size_t count) {
  std::vector<SparseCountMatrix> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(window(n_valid));
  return out;
}

namespace {

/// 1 − (1 − rate)^{n_valid}, safe at both domain edges.  rate ≥ 1 (one
/// edge holding all normalized mass) would send log1p(−rate) to −inf and
/// n_valid == 0 then multiplies it by 0 → NaN; the closed form's limits
/// are 1 for any n ≥ 1 and 0 for n == 0, so answer those directly.
double window_visibility(double rate, Count n_valid) {
  if (rate >= 1.0) return n_valid >= 1 ? 1.0 : 0.0;
  return -std::expm1(static_cast<double>(n_valid) * std::log1p(-rate));
}

}  // namespace

double SyntheticTrafficGenerator::expected_edge_visibility(
    Count n_valid) const {
  // A moved-from generator has an empty rate vector; 0/0 here would memoize
  // NaN forever, so reject it loudly instead.
  PALU_CHECK(!rates_.empty(),
             "expected_edge_visibility: generator has no rates (moved-from?)");
  return memoized(visibility_memo_, n_valid, [&] {
    double acc = 0.0;
    for (double r : rates_) {
      // P[edge seen] = 1 − (1 − r)^{N_V}.
      acc += window_visibility(r, n_valid);
    }
    return acc / static_cast<double>(rates_.size());
  });
}

double SyntheticTrafficGenerator::expected_unique_links(
    Count n_valid) const {
  PALU_CHECK(!rates_.empty(),
             "expected_unique_links: generator has no rates (moved-from?)");
  return memoized(unique_links_memo_, n_valid, [&] {
    double acc = 0.0;
    for (const double r : rates_) {
      const double forward = forward_prob_ * r;
      const double backward = (1.0 - forward_prob_) * r;
      if (forward > 0.0) acc += window_visibility(forward, n_valid);
      if (backward > 0.0) acc += window_visibility(backward, n_valid);
    }
    return acc;
  });
}

}  // namespace palu::traffic
