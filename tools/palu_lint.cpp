// palu_lint — repo-specific static checks for the palu tree.
//
// A deliberately small, dependency-free C++17 linter that machine-checks
// conventions the library's correctness arguments rely on (DESIGN.md §5c):
//
//   failpoint-registry     every PALU_FAILPOINT("name") site names an entry
//                          in tools/failpoints.txt, and no registry entry is
//                          stale (site deleted, registry not updated)
//   typed-error            library code throws only the typed errors from
//                          common/error.hpp, never bare std exceptions
//   determinism            no std::rand / std::random_device / time(nullptr)
//                          / steady- or system-clock reads outside code
//                          annotated as timing instrumentation
//   header-pragma-once     every header starts with #pragma once
//   header-using-namespace no `using namespace` in headers (the lint cannot
//                          see scopes, so function-local uses carry a
//                          suppression comment instead)
//
// Suppressions:
//   // palu-lint: allow(<rule>)       this line or the next line
//   // palu-lint: allow-file(<rule>)  whole file, with a justifying comment
//
// Timing TUs — files whose whole purpose is reading the clock (span
// recording, stage timing, benchmarks) — are declared centrally in an
// allowlist file (tools/timing_files.txt) passed via --timing-allowlist,
// mirroring the failpoint registry: one reviewable place instead of
// per-file allow-file(determinism) comments.  Entries are repo-relative
// path suffixes matched on '/' boundaries, and stale entries (no scanned
// file matches) are violations just like stale failpoints.
//
// Matching runs on comment-stripped text (and, for all rules except the
// failpoint extraction, string-stripped text), so prose and error messages
// never trip a rule.  Exit codes: 0 clean, 1 violations or selftest
// failure, 2 usage/IO error.
//
// Usage:
//   palu_lint [--registry FILE] [--timing-allowlist FILE]
//             [--no-stale-check] [--list-rules] [--selftest DIR] PATH...
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// Rule identifiers.  Every diagnostic carries one of these and every one
// of these must be exercised by tests/lint_fixtures (enforced in selftest).
const char* const kRuleFailpoint = "failpoint-registry";
const char* const kRuleTypedError = "typed-error";
const char* const kRuleDeterminism = "determinism";
const char* const kRulePragmaOnce = "header-pragma-once";
const char* const kRuleUsingNamespace = "header-using-namespace";

const char* const kAllRules[] = {kRuleFailpoint, kRuleTypedError,
                                 kRuleDeterminism, kRulePragmaOnce,
                                 kRuleUsingNamespace};

// Patterns are assembled from split literals so that palu_lint's own
// source, which is part of the scanned tree, can never match them.
const std::string kFailpointMacro = std::string("PALU_FAIL") + "POINT(";
const std::string kThrowStd = std::string("throw ") + "std" + "::";

struct DeterminismBan {
  std::string token;
  const char* why;
};

std::vector<DeterminismBan> determinism_bans() {
  return {
      {std::string("std::") + "rand", "seed-stable sweeps must draw from "
                                      "palu::Rng, not the C PRNG"},
      {std::string("random") + "_device", "nondeterministic seeding breaks "
                                          "reproducible sweeps"},
      {std::string("time(") + "nullptr)", "wall-clock seeding breaks "
                                          "reproducible sweeps"},
      {std::string("time(") + "NULL)", "wall-clock seeding breaks "
                                       "reproducible sweeps"},
      {std::string("::") + "now()", "clock reads are timing "
                                    "instrumentation; annotate the file "
                                    "with a palu-lint allow-file comment "
                                    "explaining why results stay "
                                    "seed-stable"},
  };
}

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based; 0 = whole file
  std::string rule;
  std::string message;
};

// One source line split into the views the rules match against.
struct ScannedLine {
  std::string raw;           // as read, for suppression comments
  std::string no_comments;   // comments removed, string literals kept
  std::string code;          // comments AND string literal contents removed
};

// Strips // and /* */ comments (tracking block comments across lines) and,
// for `code`, the contents of string/char literals.  Escape sequences are
// honoured; raw strings are treated as ordinary strings, which is fine for
// this tree (none are used).
class LineStripper {
 public:
  ScannedLine strip(const std::string& raw) {
    ScannedLine out;
    out.raw = raw;
    bool in_string = false;
    bool in_char = false;
    bool escaped = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      if (in_block_comment_) {
        if (c == '*' && next == '/') {
          in_block_comment_ = false;
          ++i;
        }
        continue;
      }
      if (in_string || in_char) {
        out.no_comments.push_back(c);
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (in_string && c == '"') {
          in_string = false;
          out.code.push_back(c);
        } else if (in_char && c == '\'') {
          in_char = false;
          out.code.push_back(c);
        }
        continue;
      }
      if (c == '/' && next == '/') break;  // line comment: drop the rest
      if (c == '/' && next == '*') {
        in_block_comment_ = true;
        ++i;
        continue;
      }
      out.no_comments.push_back(c);
      out.code.push_back(c);
      if (c == '"') in_string = true;
      if (c == '\'') in_char = true;
    }
    return out;
  }

 private:
  bool in_block_comment_ = false;
};

bool is_header(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h";
}

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

// Suppression bookkeeping for one file.
struct Suppressions {
  std::set<std::string> file_wide;
  // line number -> rules allowed on that line and the next one
  std::map<std::size_t, std::set<std::string>> by_line;

  bool allows(const std::string& rule, std::size_t line) const {
    if (file_wide.count(rule) != 0) return true;
    for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
      auto it = by_line.find(at);
      if (it != by_line.end() && it->second.count(rule) != 0) return true;
    }
    return false;
  }
};

// Parses `palu-lint: allow(rule)` / `palu-lint: allow-file(rule)` markers
// out of a raw line.
void collect_suppressions(const std::string& raw, std::size_t line_no,
                          Suppressions* out) {
  const std::string marker = "palu-lint:";
  std::size_t pos = raw.find(marker);
  while (pos != std::string::npos) {
    std::size_t cursor = pos + marker.size();
    while (cursor < raw.size() && raw[cursor] == ' ') ++cursor;
    const bool file_wide =
        raw.compare(cursor, 11, "allow-file(") == 0;
    const bool line_wide = raw.compare(cursor, 6, "allow(") == 0;
    if (file_wide || line_wide) {
      const std::size_t open = raw.find('(', cursor);
      const std::size_t close = raw.find(')', open);
      if (open != std::string::npos && close != std::string::npos) {
        const std::string rule = raw.substr(open + 1, close - open - 1);
        if (file_wide) {
          out->file_wide.insert(rule);
        } else {
          (*out).by_line[line_no].insert(rule);
        }
      }
    }
    pos = raw.find(marker, pos + marker.size());
  }
}

struct LintConfig {
  std::set<std::string> registry;       // registered failpoint names
  bool have_registry = false;
  bool stale_check = true;
  std::string registry_path;
  std::set<std::string> timing_files;   // path suffixes exempt from the
                                        // determinism rule
  bool have_timing_allowlist = false;
  std::string timing_allowlist_path;
};

// True when `path` ends with allowlist entry `suffix` on a '/' boundary:
// "src/obs/span.cpp" matches "/root/repo/src/obs/span.cpp" but not
// "other_span.cpp".  Paths are compared with generic (forward-slash)
// separators.
bool path_matches_suffix(const fs::path& path, const std::string& suffix) {
  const std::string p = path.generic_string();
  if (p.size() < suffix.size()) return false;
  if (p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return p.size() == suffix.size() ||
         p[p.size() - suffix.size() - 1] == '/';
}

// Extracts the quoted first argument of every PALU_FAILPOINT("...") on the
// line.  Sites with a non-literal argument (the macro definition itself)
// are skipped by construction.
std::vector<std::string> failpoint_names(const std::string& no_comments) {
  std::vector<std::string> names;
  std::size_t pos = no_comments.find(kFailpointMacro);
  while (pos != std::string::npos) {
    std::size_t cursor = pos + kFailpointMacro.size();
    while (cursor < no_comments.size() && no_comments[cursor] == ' ') {
      ++cursor;
    }
    if (cursor < no_comments.size() && no_comments[cursor] == '"') {
      const std::size_t close = no_comments.find('"', cursor + 1);
      if (close != std::string::npos) {
        names.push_back(
            no_comments.substr(cursor + 1, close - cursor - 1));
      }
    }
    pos = no_comments.find(kFailpointMacro, pos + kFailpointMacro.size());
  }
  return names;
}

void lint_file(const fs::path& path, const LintConfig& config,
               std::vector<Violation>* violations,
               std::set<std::string>* seen_failpoints,
               std::set<std::string>* matched_timing_entries) {
  std::ifstream in(path);
  if (!in) {
    violations->push_back(
        {path.string(), 0, "io", "cannot open file for linting"});
    return;
  }

  std::vector<ScannedLine> lines;
  Suppressions suppressions;
  LineStripper stripper;
  std::string raw;
  while (std::getline(in, raw)) {
    lines.push_back(stripper.strip(raw));
    collect_suppressions(raw, lines.size(), &suppressions);
  }

  // Timing TUs from the central allowlist get a file-wide determinism
  // exemption, exactly as if they carried allow-file(determinism).
  for (const std::string& entry : config.timing_files) {
    if (path_matches_suffix(path, entry)) {
      suppressions.file_wide.insert(kRuleDeterminism);
      if (matched_timing_entries != nullptr) {
        matched_timing_entries->insert(entry);
      }
    }
  }

  const bool header = is_header(path);
  const auto bans = determinism_bans();
  std::vector<Violation> local;
  bool saw_pragma_once = false;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const ScannedLine& ln = lines[i];

    if (ln.code.find("#pragma once") != std::string::npos) {
      saw_pragma_once = true;
    }

    for (const std::string& name : failpoint_names(ln.no_comments)) {
      seen_failpoints->insert(name);
      if (config.have_registry && config.registry.count(name) == 0) {
        local.push_back({path.string(), line_no, kRuleFailpoint,
                         "failpoint \"" + name +
                             "\" is not registered in " +
                             config.registry_path +
                             "; add it so fault-injection coverage "
                             "stays auditable"});
      }
    }

    if (ln.code.find(kThrowStd) != std::string::npos) {
      local.push_back({path.string(), line_no, kRuleTypedError,
                       "library code must throw the typed errors from "
                       "common/error.hpp (palu::InvalidArgument, "
                       "DataError, ConvergenceError, ...), not bare std "
                       "exceptions"});
    }

    for (const DeterminismBan& ban : bans) {
      if (ln.code.find(ban.token) != std::string::npos) {
        local.push_back({path.string(), line_no, kRuleDeterminism,
                         "banned nondeterminism source `" + ban.token +
                             "`: " + ban.why});
      }
    }

    if (header &&
        ln.code.find("using namespace") != std::string::npos) {
      local.push_back({path.string(), line_no, kRuleUsingNamespace,
                       "`using namespace` in a header leaks into every "
                       "includer; qualify names instead (function-local "
                       "uses may carry a suppression comment)"});
    }
  }

  if (header && !saw_pragma_once && !lines.empty()) {
    local.push_back({path.string(), 1, kRulePragmaOnce,
                     "header is missing #pragma once"});
  }

  for (Violation& v : local) {
    if (!suppressions.allows(v.rule, v.line)) {
      violations->push_back(std::move(v));
    }
  }
}

// Shared loader for the registry-style config files (failpoints.txt,
// timing_files.txt): one entry per line, '#' comments, whitespace-trimmed.
bool load_entries(const std::string& path, std::set<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // trim
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t");
    out->insert(line.substr(begin, end - begin + 1));
  }
  return true;
}

bool load_registry(const std::string& path, LintConfig* config) {
  if (!load_entries(path, &config->registry)) return false;
  config->have_registry = true;
  config->registry_path = path;
  return true;
}

bool load_timing_allowlist(const std::string& path, LintConfig* config) {
  if (!load_entries(path, &config->timing_files)) return false;
  config->have_timing_allowlist = true;
  config->timing_allowlist_path = path;
  return true;
}

std::vector<fs::path> collect_files(const std::vector<std::string>& roots,
                                    bool* io_error) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator();
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && is_source_file(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "palu_lint: no such file or directory: %s\n",
                   root.c_str());
      *io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int report(const std::vector<Violation>& violations) {
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "palu_lint: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  return 0;
}

int run_lint(const std::vector<std::string>& roots, LintConfig config) {
  bool io_error = false;
  const std::vector<fs::path> files = collect_files(roots, &io_error);
  if (io_error) return 2;
  std::vector<Violation> violations;
  std::set<std::string> seen_failpoints;
  std::set<std::string> matched_timing_entries;
  for (const fs::path& f : files) {
    lint_file(f, config, &violations, &seen_failpoints,
              &matched_timing_entries);
  }
  if (config.have_registry && config.stale_check) {
    for (const std::string& name : config.registry) {
      if (seen_failpoints.count(name) == 0) {
        violations.push_back(
            {config.registry_path, 0, kRuleFailpoint,
             "registry entry \"" + name +
                 "\" has no PALU_FAILPOINT site left in the scanned "
                 "tree; delete the entry or restore the site"});
      }
    }
  }
  if (config.have_timing_allowlist && config.stale_check) {
    for (const std::string& entry : config.timing_files) {
      if (matched_timing_entries.count(entry) == 0) {
        violations.push_back(
            {config.timing_allowlist_path, 0, kRuleDeterminism,
             "timing-allowlist entry \"" + entry +
                 "\" matched no scanned file; delete the entry or fix "
                 "the path so the exemption stays auditable"});
      }
    }
  }
  return report(violations);
}

// ------------------------------------------------------------- selftest
//
// Fixture contract (tests/lint_fixtures/): each fixture declares its
// expected outcome in comments —
//   // palu-lint-expect: <rule-id>   (one per expected rule)
//   // palu-lint-expect-clean        (must produce zero violations)
// The fixture passes iff the set of rules that actually fired equals the
// declared set.  The selftest additionally requires that, across all
// fixtures, every rule (a) fires somewhere and (b) is suppressed
// somewhere (a fixture containing allow(<rule>) in which <rule> did not
// fire), proving both halves of each rule's contract.
int run_selftest(const std::string& dir, LintConfig config) {
  if (!config.have_registry) {
    std::fprintf(stderr,
                 "palu_lint: selftest requires --registry (fixtures "
                 "exercise the failpoint rule)\n");
    return 2;
  }
  config.stale_check = false;  // fixtures are linted one file at a time
  bool io_error = false;
  const std::vector<fs::path> files = collect_files({dir}, &io_error);
  if (io_error || files.empty()) {
    std::fprintf(stderr, "palu_lint: selftest: no fixtures under %s\n",
                 dir.c_str());
    return 2;
  }

  int failures = 0;
  std::set<std::string> fired_somewhere;
  std::set<std::string> suppressed_somewhere;

  for (const fs::path& f : files) {
    // Expectations come from the raw text.
    std::ifstream in(f);
    std::set<std::string> expected;
    bool expect_clean = false;
    std::set<std::string> mentioned_allows;
    std::string line;
    while (std::getline(in, line)) {
      const std::string expect_marker = "palu-lint-expect:";
      const std::size_t at = line.find(expect_marker);
      if (at != std::string::npos) {
        std::string rule = line.substr(at + expect_marker.size());
        const auto b = rule.find_first_not_of(" \t");
        const auto e = rule.find_last_not_of(" \t");
        if (b != std::string::npos) {
          expected.insert(rule.substr(b, e - b + 1));
        }
      }
      if (line.find("palu-lint-expect-clean") != std::string::npos) {
        expect_clean = true;
      }
      Suppressions s;
      collect_suppressions(line, 1, &s);
      for (const auto& r : s.file_wide) mentioned_allows.insert(r);
      for (const auto& kv : s.by_line) {
        mentioned_allows.insert(kv.second.begin(), kv.second.end());
      }
    }
    if (!expect_clean && expected.empty()) {
      std::fprintf(stderr,
                   "%s: fixture declares no palu-lint-expect marker\n",
                   f.string().c_str());
      ++failures;
      continue;
    }

    std::vector<Violation> violations;
    std::set<std::string> seen_failpoints;
    lint_file(f, config, &violations, &seen_failpoints, nullptr);
    std::set<std::string> actual;
    for (const Violation& v : violations) actual.insert(v.rule);

    if (actual != expected) {
      std::ostringstream os;
      os << f.string() << ": expected {";
      for (const auto& r : expected) os << " " << r;
      os << " } but got {";
      for (const auto& r : actual) os << " " << r;
      os << " }";
      std::fprintf(stderr, "%s\n", os.str().c_str());
      for (const Violation& v : violations) {
        std::fprintf(stderr, "  %s:%zu: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
      }
      ++failures;
    }
    fired_somewhere.insert(actual.begin(), actual.end());
    for (const std::string& r : mentioned_allows) {
      if (actual.count(r) == 0) suppressed_somewhere.insert(r);
    }
  }

  for (const char* rule : kAllRules) {
    if (fired_somewhere.count(rule) == 0) {
      std::fprintf(stderr,
                   "selftest: no fixture makes rule [%s] fire\n", rule);
      ++failures;
    }
    if (suppressed_somewhere.count(rule) == 0) {
      std::fprintf(stderr,
                   "selftest: no fixture proves rule [%s] can be "
                   "suppressed\n",
                   rule);
      ++failures;
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "palu_lint: selftest: %d failure(s)\n",
                 failures);
    return 1;
  }
  std::printf("palu_lint: selftest: %zu fixtures ok, %zu rules proven\n",
              files.size(), std::size(kAllRules));
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: palu_lint [--registry FILE] [--timing-allowlist FILE]\n"
      "                 [--no-stale-check] [--list-rules]\n"
      "                 [--selftest DIR] PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string registry_path;
  std::string timing_allowlist_path;
  std::string selftest_dir;
  LintConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--registry") {
      if (++i >= argc) return usage();
      registry_path = argv[i];
    } else if (arg == "--timing-allowlist") {
      if (++i >= argc) return usage();
      timing_allowlist_path = argv[i];
    } else if (arg == "--no-stale-check") {
      config.stale_check = false;
    } else if (arg == "--selftest") {
      if (++i >= argc) return usage();
      selftest_dir = argv[i];
    } else if (arg == "--list-rules") {
      for (const char* rule : kAllRules) std::printf("%s\n", rule);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "palu_lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      roots.push_back(arg);
    }
  }

  if (!registry_path.empty() && !load_registry(registry_path, &config)) {
    std::fprintf(stderr, "palu_lint: cannot read registry %s\n",
                 registry_path.c_str());
    return 2;
  }
  if (!timing_allowlist_path.empty() &&
      !load_timing_allowlist(timing_allowlist_path, &config)) {
    std::fprintf(stderr, "palu_lint: cannot read timing allowlist %s\n",
                 timing_allowlist_path.c_str());
    return 2;
  }

  if (!selftest_dir.empty()) return run_selftest(selftest_dir, config);
  if (roots.empty()) return usage();
  return run_lint(roots, std::move(config));
}
