// Unit tests for the Section IV-B estimation pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "palu/common/error.hpp"
#include "palu/core/estimate.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/theory.hpp"
#include "palu/math/gamma.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {
namespace {

// A noise-free histogram following the simplified PALU law:
//   mass(1) = c + l + u·μ(e^μ+1); mass(d>=2) = c·d^{−α} + u·μ^d/d!.
// The histogram normalizer rescales everything by the total mass S, so
// recovered constants are the inputs divided by S.
struct ExactLaw {
  stats::DegreeHistogram hist;
  double total_mass = 0.0;  // S
};

ExactLaw exact_law_histogram(double c, double l, double u, double mu,
                             double alpha, Degree dmax, Count scale) {
  ExactLaw out;
  const double p1 =
      c + l + (mu > 0.0 ? u * mu * (std::exp(mu) + 1.0) : 0.0);
  out.hist.add(1, static_cast<Count>(std::llround(
                      p1 * static_cast<double>(scale))));
  out.total_mass = p1;
  for (Degree d = 2; d <= dmax; ++d) {
    double share = c * std::pow(static_cast<double>(d), -alpha);
    if (mu > 0.0 && u > 0.0) {
      share += u * std::exp(static_cast<double>(d) * std::log(mu) -
                            math::log_factorial(d));
    }
    out.total_mass += share;
    const auto count = static_cast<Count>(
        std::llround(share * static_cast<double>(scale)));
    if (count > 0) out.hist.add(d, count);
  }
  return out;
}

// The Poisson bump of μ ≈ 3 leaks past d = 10, so the exact-law tests move
// the tail start to 16 where the bump is < 1e-3 of the core term.
PaluFitOptions exact_law_options() {
  PaluFitOptions opts;
  opts.tail_min = 16;
  return opts;
}

TEST(FitPalu, RecoversExactLawParameters) {
  const double c = 0.30, l = 0.25, u = 0.04, mu = 2.5, alpha = 2.2;
  const auto law =
      exact_law_histogram(c, l, u, mu, alpha, 1u << 14, 4'000'000'000ull);
  const double s = law.total_mass;
  const PaluFit fit = fit_palu(law.hist, exact_law_options());
  EXPECT_NEAR(fit.alpha, alpha, 0.02);
  EXPECT_NEAR(fit.c, c / s, 0.02 * c / s);
  EXPECT_NEAR(fit.mu, mu, 0.1);
  EXPECT_NEAR(fit.u, u / s, 0.15 * u / s);
  EXPECT_NEAR(fit.l, l / s, 0.05);
  EXPECT_TRUE(fit.mu_identifiable);
  EXPECT_GT(fit.tail_r_squared, 0.999);
  EXPECT_NEAR(fit.lambda_cap(), std::numbers::e * fit.mu, 1e-12);
}

TEST(FitPalu, PureCoreGivesZeroBump) {
  // No stars: the excess after subtracting c·d^{−α} is ~0, so μ and u
  // must come back (near) zero and l absorbs the leaf surplus.
  const double c = 0.4, l = 0.5;
  const auto law = exact_law_histogram(c, l, 0.0, 1.0, 2.0, 1u << 14,
                                       4'000'000'000ull);
  const double s = law.total_mass;
  const PaluFit fit = fit_palu(law.hist, exact_law_options());
  EXPECT_NEAR(fit.alpha, 2.0, 0.02);
  EXPECT_LT(fit.u * fit.mu, 1e-3);
  EXPECT_NEAR(fit.l, l / s, 0.05);
}

TEST(FitPalu, PredictedShareReproducesInputLaw) {
  const double c = 0.25, l = 0.3, u = 0.03, mu = 3.0, alpha = 2.5;
  const auto law =
      exact_law_histogram(c, l, u, mu, alpha, 1u << 14, 4'000'000'000ull);
  const PaluFit fit = fit_palu(law.hist, exact_law_options());
  const auto dist = stats::EmpiricalDistribution::from_histogram(law.hist);
  for (Degree d = 1; d <= 32; ++d) {
    const double measured = dist.probability_at(d);
    if (measured == 0.0) continue;
    EXPECT_NEAR(fit.predicted_share(d), measured,
                0.08 * measured + 1e-6)
        << "d=" << d;
  }
}

TEST(FitPalu, MonteCarloRecovery) {
  // End-to-end: generate a PALU network, fit the constants, compare with
  // the theory values (Monte-Carlo + approximation bands).
  const PaluParams p = PaluParams::solve_hubs(
      /*lambda=*/6.0, /*core=*/0.35, /*leaves=*/0.25, /*alpha=*/2.3,
      /*window=*/0.8);
  Rng rng(77);
  const auto h = sample_observed_degrees(p, 600000, rng);
  const PaluFit fit = fit_palu(h);
  const auto k = simplified_constants(p);
  EXPECT_NEAR(fit.alpha, p.alpha, 0.25);
  EXPECT_NEAR(fit.mu, k.mu, 0.2 * k.mu);
  EXPECT_NEAR(fit.l + fit.c, k.l + k.c, 0.3 * (k.l + k.c));
}

TEST(FitPalu, TailTooShortThrows) {
  stats::DegreeHistogram h;
  h.add(1, 100);
  h.add(2, 50);
  h.add(12, 5);  // only one point at/above tail_min
  EXPECT_THROW(fit_palu(h), DataError);
}

TEST(FitPalu, NotIdentifiableWithoutExcess) {
  // A pure zeta law (no degree-1 surplus, no bump): μ cannot be identified.
  stats::DegreeHistogram h;
  const double alpha = 2.0;
  for (Degree d = 1; d <= 4096; ++d) {
    const auto count = static_cast<Count>(std::llround(
        1e9 * std::pow(static_cast<double>(d), -alpha)));
    if (count > 0) h.add(d, count);
  }
  const PaluFit fit = fit_palu(h);
  EXPECT_NEAR(fit.alpha, alpha, 0.02);
  EXPECT_FALSE(fit.mu_identifiable);
  EXPECT_DOUBLE_EQ(fit.u, 0.0);
  EXPECT_DOUBLE_EQ(fit.mu, 0.0);
}

TEST(FitPalu, OptionsControlTailStart) {
  const double c = 0.30, l = 0.25, u = 0.04, mu = 2.0;
  const auto law =
      exact_law_histogram(c, l, u, mu, 2.2, 1u << 14, 4'000'000'000ull);
  PaluFitOptions opts;
  opts.tail_min = 20;
  const PaluFit fit = fit_palu(law.hist, opts);
  EXPECT_NEAR(fit.alpha, 2.2, 0.02);
  EXPECT_THROW(
      [&] {
        PaluFitOptions bad;
        bad.tail_min = 1;
        return fit_palu(law.hist, bad);
      }(),
      InvalidArgument);
}

TEST(RefinePaluFit, PolishImprovesStagedFit) {
  const double c = 0.28, l = 0.27, u = 0.035, mu = 2.8, alpha = 2.3;
  const auto law =
      exact_law_histogram(c, l, u, mu, alpha, 1u << 14, 4'000'000'000ull);
  const auto dist = stats::EmpiricalDistribution::from_histogram(law.hist);
  const PaluFit staged = fit_palu(law.hist, exact_law_options());
  const PaluFit polished = refine_palu_fit(dist, staged);
  const double s = law.total_mass;
  // Weighted residual of the polished fit must not exceed the staged one
  // (refine falls back otherwise), and the constants land closer.
  const auto sse_of = [&](const PaluFit& f) {
    double acc = 0.0;
    for (Degree d = 1; d <= 64; ++d) {
      const double measured = dist.probability_at(d);
      if (measured == 0.0) continue;
      const double r = f.predicted_share(d) - measured;
      acc += r * r * measured;
    }
    return acc;
  };
  EXPECT_LE(sse_of(polished), sse_of(staged) + 1e-18);
  EXPECT_NEAR(polished.alpha, alpha, 0.02);
  EXPECT_NEAR(polished.mu, mu, 0.1);
  EXPECT_NEAR(polished.c, c / s, 0.02 * c / s);
  EXPECT_NEAR(polished.l, l / s, 0.02);
}

TEST(RefinePaluFit, FallsBackWhenNothingToGain) {
  // Hand the refiner a fit that is already (numerically) optimal for a
  // tiny dataset; it must return something no worse.
  stats::DegreeHistogram h;
  h.add(1, 1000);
  h.add(2, 250);
  h.add(3, 111);
  h.add(4, 62);
  for (Degree d = 5; d <= 40; ++d) {
    h.add(d, static_cast<Count>(1000.0 /
                                (static_cast<double>(d) *
                                 static_cast<double>(d))));
  }
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  const PaluFit fit = fit_palu(h);
  const PaluFit polished = refine_palu_fit(dist, fit);
  EXPECT_GT(polished.alpha, 1.0);
  EXPECT_LT(polished.alpha, 4.0);
}

TEST(RefinePaluFit, ValidatesArguments) {
  stats::DegreeHistogram h;
  h.add(1, 10);
  h.add(2, 5);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  PaluFit dummy;
  dummy.alpha = 2.0;
  dummy.c = 0.1;
  EXPECT_THROW(refine_palu_fit(dist, dummy, 4), InvalidArgument);
  // Too few points: the initial fit comes back unchanged.
  const PaluFit same = refine_palu_fit(dist, dummy);
  EXPECT_DOUBLE_EQ(same.alpha, dummy.alpha);
}

TEST(EstimateMuPointwise, AgreesOnExactLaw) {
  const double c = 0.30, l = 0.25, u = 0.04, mu = 2.5, alpha = 2.2;
  const auto law =
      exact_law_histogram(c, l, u, mu, alpha, 1u << 14, 4'000'000'000ull);
  const auto dist = stats::EmpiricalDistribution::from_histogram(law.hist);
  const double mu_hat =
      estimate_mu_pointwise(dist, c / law.total_mass, alpha);
  EXPECT_NEAR(mu_hat, mu, 0.15 * mu);
}

TEST(EstimateMuPointwise, HigherVarianceThanMomentRatio) {
  // The paper's claim behind the moment-ratio route: across noisy
  // replicates, the point-wise estimator scatters more.  (The ablation
  // bench quantifies this; here we just check both produce finite
  // estimates on sampled data.)
  const PaluParams p = PaluParams::solve_hubs(5.0, 0.3, 0.2, 2.4, 0.9);
  Rng rng(5);
  const auto h = sample_observed_degrees(p, 200000, rng);
  const PaluFit fit = fit_palu(h);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  const double mu_pw = estimate_mu_pointwise(dist, fit.c, fit.alpha);
  EXPECT_GT(fit.mu, 0.0);
  EXPECT_GT(mu_pw, 0.0);
}

}  // namespace
}  // namespace palu::core
