// Incremental packet-trace reading for unbounded streams.
//
// `palu_tool serve` tails a growing file, a pipe, or stdin: data arrive
// in arbitrary chunks whose boundaries do not respect line breaks.  The
// batch read_trace reader would misparse the fragment at the end of
// every chunk as a malformed line and bleed the error budget dry on
// perfectly healthy input.  TraceTailReader therefore buffers bytes and
// only parses complete (newline-terminated) lines: a partial last line
// is "incomplete, retry with more bytes", never a budget charge.  The
// per-line policy machinery is exactly read_trace's — same ErrorPolicy
// semantics, same IngestReport accounting, same palu_ingest_* counters
// (reader label "trace_tail").
//
// Every emitted record carries the stream byte offset one past its line,
// so a consumer that persists `end_offset` can crash, reopen the file,
// seek, and resume with no duplicated and no dropped packets — the
// anchor the serve checkpoint is built on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::io {

/// One parsed packet plus its resume anchor.
struct TailRecord {
  traffic::Packet packet;
  /// Stream offset one past this record's line (including the '\n').
  /// Seeking here and re-reading yields the stream minus everything up
  /// to and including this record.
  std::uint64_t end_offset = 0;
};

class TraceTailReader {
 public:
  /// `base_offset` is the stream position the first fed byte corresponds
  /// to (non-zero after a checkpoint-restore seek).
  explicit TraceTailReader(const IngestOptions& opts = {},
                           std::uint64_t base_offset = 0);
  ~TraceTailReader();

  TraceTailReader(const TraceTailReader&) = delete;
  TraceTailReader& operator=(const TraceTailReader&) = delete;

  /// Consumes one chunk, appending a TailRecord per complete packet line
  /// to `out`.  Returns the number of records appended.  Throws
  /// palu::DataError exactly where read_trace would (kStrict malformed
  /// line, exhausted error budget).
  std::size_t feed(std::string_view chunk, std::vector<TailRecord>& out);

  /// Flushes the trailing partial line, treating end-of-stream as its
  /// terminator.  Call once when the stream is known to be complete; a
  /// follow-mode reader never calls this.
  std::size_t finish(std::vector<TailRecord>& out);

  /// Stream offset one past the last fully consumed line — the exact
  /// position to seek to when resuming.  Bytes past it are the buffered
  /// partial line.
  std::uint64_t consumed_offset() const noexcept { return consumed_; }

  /// Bytes held back as a partial line.
  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

  /// Drops the partial-line buffer and rebases the reader at `offset`
  /// (stage restart: the owner re-reads from consumed_offset()).
  void reset_at(std::uint64_t offset);

  /// Cumulative per-line accounting across all feeds.
  const IngestReport& report() const noexcept;

 private:
  std::size_t consume_line(std::string_view line,
                           std::vector<TailRecord>& out);

  struct Gate;  // wraps the internal IngestGate without leaking it here
  std::unique_ptr<Gate> gate_;
  std::string buffer_;
  std::uint64_t consumed_ = 0;
};

}  // namespace palu::io
