# Empty compiler generated dependencies file for palu_io.
# This may be replaced when dependencies are built.
