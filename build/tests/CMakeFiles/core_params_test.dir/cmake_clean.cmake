file(REMOVE_RECURSE
  "CMakeFiles/core_params_test.dir/core_params_test.cpp.o"
  "CMakeFiles/core_params_test.dir/core_params_test.cpp.o.d"
  "core_params_test"
  "core_params_test.pdb"
  "core_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
