#include "analyze/analysis.hpp"

#include <algorithm>
#include <fstream>

namespace palu::analyze {

std::vector<Marker> collect_markers(const TokenizedFile& toks) {
  std::vector<Marker> markers;
  const std::string tag = "palu-lint:";
  for (const Token& comment : toks.comments) {
    const std::string& text = comment.text;
    std::size_t pos = text.find(tag);
    while (pos != std::string::npos) {
      std::size_t cursor = pos + tag.size();
      while (cursor < text.size() && text[cursor] == ' ') ++cursor;
      const bool file_wide = text.compare(cursor, 11, "allow-file(") == 0;
      const bool line_wide = text.compare(cursor, 6, "allow(") == 0;
      if (file_wide || line_wide) {
        const std::size_t open = text.find('(', cursor);
        const std::size_t close = text.find(')', open);
        if (open != std::string::npos && close != std::string::npos) {
          Marker m;
          m.rule = text.substr(open + 1, close - open - 1);
          m.file_wide = file_wide;
          // Attribute the marker to the physical line its text sits on
          // (block comments span lines; their token starts earlier).
          m.line = comment.line +
                   static_cast<std::size_t>(
                       std::count(text.begin(), text.begin() +
                                  static_cast<std::ptrdiff_t>(pos), '\n'));
          markers.push_back(std::move(m));
        }
      }
      pos = text.find(tag, pos + tag.size());
    }
  }
  return markers;
}

namespace {

// A line marker at L covers violations on L and L+1 (marker above the
// offending line, or trailing on it).
bool marker_covers(const Marker& m, const std::string& rule,
                   std::size_t line) {
  if (m.rule != rule) return false;
  if (m.file_wide) return true;
  return m.line == line || m.line + 1 == line;
}

}  // namespace

void apply_suppressions(FileScan& scan,
                        const std::set<std::string>& config_file_wide,
                        std::vector<Violation> local,
                        std::vector<Violation>* out) {
  for (Violation& v : local) {
    if (config_file_wide.count(v.rule) != 0) continue;
    bool suppressed = false;
    for (Marker& m : scan.markers) {
      if (marker_covers(m, v.rule, v.line)) {
        m.used = true;
        suppressed = true;
        // Keep scanning: several markers may cover the same line and all
        // of them are doing their declared job.
      }
    }
    if (!suppressed) out->push_back(std::move(v));
  }
}

void check_stale_markers(FileScan& scan, std::vector<Violation>* out) {
  auto& markers = scan.markers;
  // Resolution round first, reporting round second: a marker that is
  // unused after the main passes may still earn its keep here by
  // suppressing another marker's staleness diagnostic, and that must not
  // depend on iteration order.
  std::vector<bool> excused(markers.size(), false);
  const std::vector<bool> was_used = [&markers] {
    std::vector<bool> u;
    for (const Marker& m : markers) u.push_back(m.used);
    return u;
  }();
  for (std::size_t i = 0; i < markers.size(); ++i) {
    if (was_used[i]) continue;
    for (std::size_t j = 0; j < markers.size(); ++j) {
      if (j == i) continue;  // a marker cannot excuse its own staleness
      if (marker_covers(markers[j], kRuleStaleSuppression,
                        markers[i].line)) {
        markers[j].used = true;
        excused[i] = true;
      }
    }
  }
  for (std::size_t i = 0; i < markers.size(); ++i) {
    if (markers[i].used || excused[i]) continue;
    bool known = false;
    for (const char* rule : kAllRules) {
      known = known || markers[i].rule == rule;
    }
    out->push_back(
        {scan.path.string(), markers[i].line, kRuleStaleSuppression,
         known ? "suppression `allow" +
                     std::string(markers[i].file_wide ? "-file" : "") +
                     "(" + markers[i].rule +
                     ")` no longer suppresses any diagnostic; delete it "
                     "so the suppression inventory stays honest"
               : "suppression names unknown rule `" + markers[i].rule +
                     "`; see palu_lint --list-rules"});
  }
}

bool load_entries(const std::string& path, std::set<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t");
    out->insert(line.substr(begin, end - begin + 1));
  }
  return true;
}

bool path_matches_suffix(const std::filesystem::path& path,
                         const std::string& suffix) {
  const std::string p = path.generic_string();
  if (p.size() < suffix.size()) return false;
  if (p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return p.size() == suffix.size() ||
         p[p.size() - suffix.size() - 1] == '/';
}

}  // namespace palu::analyze
