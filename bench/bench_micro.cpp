// Substrate microbenchmarks: special functions, samplers, generators,
// fitting, and thread-pool scaling.
#include <benchmark/benchmark.h>

#include "palu/palu.hpp"

namespace {

using namespace palu;

void BM_RiemannZeta(benchmark::State& state) {
  double s = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::riemann_zeta(s));
    s = s < 3.0 ? s + 1e-6 : 1.5;  // defeat memoization-by-compiler
  }
}
BENCHMARK(BM_RiemannZeta);

void BM_ShiftedTruncatedZeta(benchmark::State& state) {
  const auto dmax = static_cast<std::uint64_t>(state.range(0));
  double delta = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::shifted_truncated_zeta(2.1, delta, dmax));
    delta += 1e-6;
  }
}
BENCHMARK(BM_ShiftedTruncatedZeta)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_LambdaInverse(benchmark::State& state) {
  double r = 2.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::invert_lambda_moment_ratio(r));
    r = r < 20.0 ? r + 1e-5 : 2.5;
  }
}
BENCHMARK(BM_LambdaInverse);

void BM_PoissonSampler(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_poisson(rng, lambda));
  }
}
BENCHMARK(BM_PoissonSampler)->Arg(2)->Arg(20)->Arg(200);

void BM_BoundedZipfSampler(benchmark::State& state) {
  rng::BoundedZipfSampler zipf(2.0, 1u << 20);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_BoundedZipfSampler);

void BM_ZetaDegreeCore(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::zeta_degree_core(rng, n, 2.2, n - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ZetaDegreeCore)->Arg(10000)->Arg(100000);

void BM_GenerateObservedPalu(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto params =
      core::PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2, 0.5);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_observed_degrees(params, n, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenerateObservedPalu)->Arg(10000)->Arg(100000);

void BM_StreamWindow(benchmark::State& state) {
  const auto nv = static_cast<Count>(state.range(0));
  Rng gen_rng(5);
  const auto g = graph::zeta_degree_core(gen_rng, 20000, 2.0, 2000);
  traffic::SyntheticTrafficGenerator stream(g, traffic::RateModel{},
                                            Rng(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.window(nv));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nv));
}
BENCHMARK(BM_StreamWindow)->Arg(10000)->Arg(100000);

void BM_ZmFit(benchmark::State& state) {
  const Degree dmax = 1u << 14;
  const fit::ZipfMandelbrot truth(2.1, 0.8, dmax);
  const auto target = truth.pooled();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_zipf_mandelbrot(target, dmax));
  }
}
BENCHMARK(BM_ZmFit);

void BM_PaluFit(benchmark::State& state) {
  const auto params =
      core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2, 0.7);
  Rng rng(7);
  const auto h = core::sample_observed_degrees(params, 200000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_palu(h));
  }
}
BENCHMARK(BM_PaluFit);

void BM_TopologyCensus(benchmark::State& state) {
  const auto params =
      core::PaluParams::solve_hubs(3.0, 0.3, 0.2, 2.1, 0.6);
  Rng rng(8);
  const auto net = core::generate_underlying(params, 200000, rng);
  const auto observed = core::generate_observed(net, params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::classify_topology(observed));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(observed.num_nodes()));
}
BENCHMARK(BM_TopologyCensus);

void BM_ParallelHistogramMerge(benchmark::State& state) {
  // Per-window histograms built in parallel then merged — the scaling path
  // used by the Fig-3 bench.
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  Rng gen_rng(9);
  const auto g = graph::zeta_degree_core(gen_rng, 30000, 2.0, 3000);
  for (auto _ : state) {
    constexpr std::size_t kWindows = 8;
    std::vector<stats::DegreeHistogram> partial(kWindows);
    parallel_for(pool, 0, kWindows, 1, [&](IndexRange r) {
      for (std::size_t w = r.begin; w < r.end; ++w) {
        traffic::SyntheticTrafficGenerator stream(
            g, traffic::RateModel{}, Rng(100 + w));
        partial[w] = traffic::quantity_histogram(
            stream.window(20000), traffic::Quantity::kSourceFanOut);
      }
    });
    stats::DegreeHistogram merged;
    for (const auto& h : partial) merged.merge(h);
    benchmark::DoNotOptimize(merged.total());
  }
}
BENCHMARK(BM_ParallelHistogramMerge)->Arg(1)->Arg(2)->Arg(4);

void BM_AssocZeroNormContraction(benchmark::State& state) {
  Rng rng(10);
  traffic::AssocArray a;
  for (int i = 0; i < 100000; ++i) {
    a.add(rng.uniform_index(5000), rng.uniform_index(5000), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.zero_norm().sum());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_AssocZeroNormContraction);

void BM_KsTwoSample(benchmark::State& state) {
  Rng rng(11);
  rng::BoundedZipfSampler zipf(2.0, 1u << 16);
  stats::DegreeHistogram a, b;
  for (int i = 0; i < 50000; ++i) a.add(zipf(rng));
  for (int i = 0; i < 50000; ++i) b.add(zipf(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::ks_test_two_sample(a, b));
  }
}
BENCHMARK(BM_KsTwoSample);

void BM_KCoreNumbers(benchmark::State& state) {
  Rng rng(12);
  const auto g = graph::barabasi_albert(
      rng, static_cast<NodeId>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::k_core_numbers(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_KCoreNumbers)->Arg(10000)->Arg(100000);

void BM_BootstrapCi(benchmark::State& state) {
  Rng sample_rng(13);
  rng::BoundedZipfSampler zipf(2.2, 1u << 16);
  stats::DegreeHistogram h;
  for (int i = 0; i < 10000; ++i) h.add(zipf(sample_rng));
  ThreadPool pool(2);
  fit::BootstrapOptions opts;
  opts.replicates = 20;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(fit::bootstrap_ci(
        h,
        [](const stats::DegreeHistogram& sample) {
          return fit::fit_power_law_fixed_xmin(sample, 1).alpha;
        },
        rng, pool, opts));
  }
}
BENCHMARK(BM_BootstrapCi);

void BM_StreamingEstimatorWindow(benchmark::State& state) {
  const auto params = core::scenarios::mixed().at_window(0.8);
  Rng rng(14);
  const auto window = core::sample_observed_degrees(params, 50000, rng);
  for (auto _ : state) {
    core::StreamingPaluEstimator streaming;
    for (int w = 0; w < 4; ++w) streaming.add_window(window);
    benchmark::DoNotOptimize(streaming.current());
  }
}
BENCHMARK(BM_StreamingEstimatorWindow);

}  // namespace

BENCHMARK_MAIN();
