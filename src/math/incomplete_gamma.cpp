#include "palu/math/incomplete_gamma.hpp"

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"

namespace palu::math {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;

// Series: P(a, x) = x^a e^{−x} / Γ(a) · Σ_{n≥0} x^n / (a(a+1)…(a+n)).
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double denom = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    denom += 1.0;
    term *= x / denom;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) {
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw ConvergenceError("regularized_gamma_p: series did not converge");
}

// Lentz continued fraction for Q(a, x).
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) {
      return h * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw ConvergenceError(
      "regularized_gamma_q: continued fraction did not converge");
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  PALU_CHECK(a > 0.0, "regularized_gamma_p: requires a > 0");
  PALU_CHECK(x >= 0.0, "regularized_gamma_p: requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  PALU_CHECK(a > 0.0, "regularized_gamma_q: requires a > 0");
  PALU_CHECK(x >= 0.0, "regularized_gamma_q: requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_squared_survival(double x, double dof) {
  PALU_CHECK(dof > 0.0, "chi_squared_survival: requires dof > 0");
  PALU_CHECK(x >= 0.0, "chi_squared_survival: requires x >= 0");
  return regularized_gamma_q(0.5 * dof, 0.5 * x);
}

}  // namespace palu::math
