// Internal "src dst" line parsing shared by the batch trace reader and
// the streaming tail reader.  Not installed.
#pragma once

#include <string_view>

#include "palu/common/result.hpp"
#include "palu/io/parse.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::io::detail {

inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits "src dst" and parses both ids; on failure returns the
/// diagnostic for the first offending token.
inline Result<traffic::Packet> parse_packet_line(std::string_view body) {
  const std::size_t split = body.find_first_of(" \t");
  if (split == std::string_view::npos) {
    return Result<traffic::Packet>::failure("expected two tokens");
  }
  const std::string_view src_tok = trim(body.substr(0, split));
  const std::string_view dst_tok = trim(body.substr(split));
  if (src_tok.empty() || dst_tok.empty()) {
    return Result<traffic::Packet>::failure("expected two tokens");
  }
  const auto src = parse_u64(src_tok);
  if (!src.ok()) return Result<traffic::Packet>::failure(src.error());
  const auto dst = parse_u64(dst_tok);
  if (!dst.ok()) return Result<traffic::Packet>::failure(dst.error());
  return traffic::Packet{src.value(), dst.value()};
}

}  // namespace palu::io::detail
