// Traffic anomaly scoring on PALU statistics.
//
// The paper's motivation is operational: "the rising influence of
// adversarial Internet robots" shows up as excess leaves and unattached
// links.  This detector packages the library's pieces into one scoring
// call: a calm baseline is accumulated from windows, and each incoming
// window is scored by (a) the two-sample KS p-value against the baseline
// degree law, (b) the shift of the star-bump parameter μ, and (c) the
// shift of the degree-1 mass — the PALU-specific bot signatures.
#pragma once

#include <optional>

#include "palu/core/estimate.hpp"
#include "palu/fit/ks_test.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

struct AnomalyScore {
  double ks_statistic = 0.0;
  double ks_p_value = 1.0;
  double mu_baseline = 0.0;
  double mu_window = 0.0;      // 0 when unidentifiable in the window
  double d1_baseline = 0.0;    // degree-1 mass of the baseline
  double d1_window = 0.0;
  bool flagged = false;        // ks_p below threshold
};

struct AnomalyOptions {
  double p_threshold = 1e-4;   // KS p-value below this flags the window
  PaluFitOptions fit;          // estimator settings for μ extraction
};

class WindowAnomalyDetector {
 public:
  explicit WindowAnomalyDetector(AnomalyOptions opts = {})
      : opts_(opts) {}

  /// Folds a calm window into the baseline.  Baseline windows should
  /// precede any score() calls; later additions extend the baseline.
  void add_baseline(const stats::DegreeHistogram& window);

  bool has_baseline() const noexcept { return !baseline_.empty(); }

  /// Scores one window against the accumulated baseline.  Throws
  /// palu::DataError when no baseline has been added.
  AnomalyScore score(const stats::DegreeHistogram& window) const;

  const stats::DegreeHistogram& baseline() const noexcept {
    return baseline_;
  }

 private:
  AnomalyOptions opts_;
  stats::DegreeHistogram baseline_;
  // Lazily cached baseline fit (recomputed when the baseline grows).
  mutable std::optional<PaluFit> baseline_fit_;
  mutable Count baseline_total_at_fit_ = 0;
};

}  // namespace palu::core
