// xoshiro256++ pseudo-random engine with splitmix64 seeding.
//
// Chosen for speed (sub-ns per draw), 2^256−1 period, and cheap independent
// stream derivation (`fork`/`jump`) so Monte-Carlo sweeps can hand each
// worker thread its own deterministic stream.  Satisfies
// std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cstdint>

namespace palu {

/// splitmix64 step; used for seeding and as a cheap hash of seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Xoshiro256PlusPlus(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe to take log of).
  double uniform_positive() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n); n must be > 0.  Uses Lemire's multiply-shift
  /// with rejection, so the result is exactly uniform.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // 128-bit multiply; rejection bounds the modulo bias away entirely.
    for (;;) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * n;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= n || lo >= (-n) % n) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Bernoulli(p) coin.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Snapshot of the full 256-bit engine state (for checkpointing and
  /// stream-derivation tests).
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Rebuilds an engine from a `state()` snapshot.  An all-zero state is a
  /// fixed point of xoshiro, so it falls back to the default-seeded engine
  /// instead of producing a stream of zeros.
  static Xoshiro256PlusPlus from_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    if ((state[0] | state[1] | state[2] | state[3]) == 0) {
      return Xoshiro256PlusPlus{};
    }
    Xoshiro256PlusPlus out(0);
    out.state_ = state;
    return out;
  }

  /// Derives an independent deterministic child stream.  Children of
  /// distinct indices (and the parent) do not overlap in practice: the seed
  /// is re-mixed through splitmix64, giving each child a far-apart state.
  /// All four parent state words feed the child seed, so parents that agree
  /// on a single word (e.g. post-`jump` siblings) still fork distinct
  /// streams.
  Xoshiro256PlusPlus fork(std::uint64_t index) const noexcept {
    std::uint64_t sm = 0x9e3779b97f4a7c15ULL * (index + 1);
    for (const std::uint64_t word : state_) {
      std::uint64_t mix = sm ^ word;
      sm = splitmix64(mix);
    }
    Xoshiro256PlusPlus child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Advances 2^128 steps; the classic xoshiro jump polynomial.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^=
              state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Default engine alias used across the library.
using Rng = Xoshiro256PlusPlus;

}  // namespace palu
