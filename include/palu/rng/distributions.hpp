// Exact samplers for the discrete laws the PALU model is built from.
//
// - Poisson(λ): star leaf counts in the unattached component (Section V).
// - Binomial(n, p): edge thinning when forming the observed network.
// - Bounded Zipf (p(d) ∝ d^{-α}, 1 ≤ d ≤ dmax): core degree sequence.
// - Geometric: the Section VI geometric replacement of the Poisson tail.
// - Alias method: arbitrary finite pmfs (e.g. Zipf–Mandelbrot streams).
// - Multinomial(n, w): whole window matrices in one draw — per-category
//   counts via binomial splitting, O(#categories) independent of n.
//
// All samplers are exact (rejection-based, not approximations) so that
// Monte-Carlo checks of the paper's closed-form predictions are limited by
// sampling noise only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "palu/rng/xoshiro.hpp"

namespace palu::rng {

/// Poisson(λ) sample; exact for all λ ≥ 0 (inversion below λ=10, Hörmann
/// PTRS transformed rejection above).
std::uint64_t sample_poisson(Rng& rng, double lambda);

/// Binomial(n, p) sample; exact (inversion for small n·min(p,1−p),
/// Hörmann BTRS transformed rejection for large).
std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p);

/// Binomial(n, p) sample with the same law as sample_binomial but a
/// different small-mean kernel: single-uniform CDF inversion via the
/// multiplicative pmf recurrence, one mul/div per step instead of one
/// log per success, then the shared BTRS kernel once n·min(p,1−p) ≥ 10.
/// Used by the count-space synthesis hot loops, where millions of
/// small-mean splits per window make the transcendental count the
/// bottleneck.  Consumes the RNG differently from sample_binomial, so
/// callers pinned to byte-exact legacy streams must keep using that one.
std::uint64_t sample_binomial_small(Rng& rng, std::uint64_t n, double p);

/// Geometric on {1, 2, ...} with success probability q: P[X=k] = q(1−q)^{k−1}.
std::uint64_t sample_geometric(Rng& rng, double q);

/// Samples d ∈ [dmin, dmax] with P(d) ∝ d^{-alpha}, alpha > 0, by
/// rejection-inversion (Hörmann & Derflinger); O(1) per draw for any range.
class BoundedZipfSampler {
 public:
  /// Domain [1, dmax].
  BoundedZipfSampler(double alpha, std::uint64_t dmax);

  /// Domain [dmin, dmax]; used for power-law tails d >= xmin.
  BoundedZipfSampler(double alpha, std::uint64_t dmin, std::uint64_t dmax);

  std::uint64_t operator()(Rng& rng) const;

  double alpha() const noexcept { return alpha_; }
  std::uint64_t dmin() const noexcept { return dmin_; }
  std::uint64_t dmax() const noexcept { return dmax_; }

 private:
  double h_integral(double x) const;
  double h(double x) const;
  double h_integral_inverse(double y) const;
  std::uint64_t sample_steep(Rng& rng) const;

  double alpha_;
  std::uint64_t dmin_;
  std::uint64_t dmax_;
  double h_integral_lo_;  // H(dmin + 0.5) − h(dmin): lower end of u range
  double h_integral_hi_;  // H(dmax + 0.5): upper end of u range
  double s_;
  // Steep-exponent mode: rejection-inversion loses H(dmin)↔H(dmax)
  // resolution once α·ln is large, so for α >= 8 draws walk the cdf
  // directly from dmin (expected O(1) steps — the law is concentrated).
  bool steep_ = false;
  double total_mass_ = 0.0;  // Σ_{d=dmin}^{dmax} d^{−α} for steep mode
};

/// Exact Multinomial(n, w) sampler over a fixed weight vector.
///
/// Construction precomputes a balanced binary tree of partial weight sums
/// (pairwise summation, so heavy-tailed weight vectors do not lose mass
/// to rounding).  Each draw splits n recursively down the tree — the
/// left-subtree count is Binomial(n, w_left / w_node), reusing the exact
/// BTRS/inversion kernel of sample_binomial — so a full draw costs
/// O(#categories) regardless of n.  Subtrees whose count reaches zero are
/// pruned, and a single remaining trial descends the cumulative sums
/// directly, so sparse draws (n << #categories) cost O(active · log).
///
/// Dense draws (4·n ≥ #categories, where pruning cannot win) instead run
/// the sequential conditional-binomial split: category c takes
/// Binomial(n_remaining, w_c / suffix_sum_c) in one linear cache-friendly
/// pass, exactly one split per non-zero category.  Together the two
/// regimes keep the per-draw cost nearly flat in n, which is what makes
/// the count-space sweep's per-window cost independent of N_V.
///
/// This is the count-space synthesis kernel: under iid rate-proportional
/// packet draws a whole traffic window is exactly Multinomial(N_V, rates),
/// so sampling counts per edge replaces N_V per-packet draws.
class MultinomialSampler {
 public:
  /// `weights` need not be normalized; they must be non-negative and
  /// finite with a positive sum.  Zero-weight categories always draw 0.
  explicit MultinomialSampler(const std::vector<double>& weights);

  /// Fills `counts` (size num_categories()) with one Multinomial(n, w)
  /// draw; Σ counts == n exactly.
  void operator()(Rng& rng, std::uint64_t n,
                  std::span<std::uint64_t> counts) const;

  std::size_t num_categories() const noexcept { return categories_; }

 private:
  void descend(Rng& rng, std::size_t node, std::uint64_t n,
               std::span<std::uint64_t> counts) const;
  void sequential_split(Rng& rng, std::uint64_t n,
                        std::span<std::uint64_t> counts) const;

  // Implicit heap: tree_[1] is the total weight, children of i are 2i and
  // 2i+1, category c's leaf sits at leaf_base_ + c (power-of-two padding
  // carries weight 0 and is pruned on every draw).
  std::vector<double> tree_;
  // Dense-regime split constants, fixed per category: the conditional
  // probability p_c = w_c / Σ_{j ≥ c} w_j (compensated suffix sums), plus
  // log1p(−p_c) and p_c/(1−p_c) so the per-window CDF walk pays one exp,
  // not an exp and a log1p, per category, and log(p_c/(1−p_c)) so the
  // large-mean BTRS draws skip their per-call log.
  std::vector<double> split_p_;
  std::vector<double> split_log1m_;
  std::vector<double> split_ratio_;
  std::vector<double> split_lpq_;
  std::size_t categories_ = 0;
  std::size_t leaf_base_ = 0;
  std::size_t last_nonzero_ = 0;  // largest c with w_c > 0: takes the rest
};

/// One-shot convenience wrapper: a single Multinomial(n, weights) draw.
std::vector<std::uint64_t> sample_multinomial(
    Rng& rng, std::uint64_t n, const std::vector<double>& weights);

/// Walker alias method over a finite pmf on {offset, offset+1, ...}.
/// Construction is O(n); each draw is O(1).
class AliasSampler {
 public:
  /// `weights` need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasSampler(const std::vector<double>& weights,
                        std::uint64_t offset = 0);

  std::uint64_t operator()(Rng& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::uint64_t offset_;
};

}  // namespace palu::rng
