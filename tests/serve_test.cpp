// Serve-subsystem suite: the incremental tail reader (chunk boundaries
// never charge the error budget), the bounded backpressure queue, the
// PALU_FAILPOINT spec parser, checkpoint durability and exact round
// trips, and in-process ServeDaemon runs — clean EOF service, the
// restore-equivalence acceptance property, and deterministic fault
// injection through all four serve failpoints.  Everything runs off
// fixed seeds and temp files; no subprocesses, no signals.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/common/result.hpp"
#include "palu/core/streaming.hpp"
#include "palu/graph/generators.hpp"
#include "palu/io/tail.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/serve/checkpoint.hpp"
#include "palu/serve/daemon.hpp"
#include "palu/serve/options.hpp"
#include "palu/serve/queue.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_accumulator.hpp"

namespace palu {
namespace {

using io::TailRecord;
using io::TraceTailReader;
using serve::BoundedRecordQueue;

// ------------------------------------------------------------ fixtures

// A deterministic heavy-tailed packet stream: preferential-attachment
// underlying network driven by Pareto edge rates, the same shape the
// paper's windows are fit against.
std::vector<traffic::Packet> synth_packets(std::size_t n,
                                           std::uint64_t seed) {
  Rng grng(seed);
  const auto g = graph::barabasi_albert(grng, 400, 2);
  traffic::SyntheticTrafficGenerator gen(g, traffic::RateModel{},
                                         Rng(seed + 1));
  std::vector<traffic::Packet> out(n);
  gen.next_batch(out);
  return out;
}

std::string to_trace_text(const std::vector<traffic::Packet>& packets) {
  std::ostringstream out;
  for (const auto& p : packets) out << p.src << ' ' << p.dst << '\n';
  return out.str();
}

// Unique-per-test temp path under the build tree's cwd.
std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "palu_serve_" + stem;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::disarm_all(); }
};

// ------------------------------------------------------- tail reader

// The regression the serve ingest path depends on: a writer that emits
// one byte at a time presents every prefix of every line as a "partial
// last line".  The batch reader would misparse each prefix and bleed the
// error budget; the tail reader must treat them as incomplete and parse
// each line exactly once, with zero drops, even under a zero budget.
TEST_F(ServeTest, TailReaderByteByByteWriterNeverChargesBudget) {
  const auto packets = synth_packets(200, 71);
  const std::string text = to_trace_text(packets);

  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  opts.max_bad_lines = 0;  // any spurious "malformed" charge throws
  TraceTailReader reader(opts);

  std::vector<TailRecord> records;
  for (char byte : text) {
    ASSERT_NO_THROW(reader.feed(std::string_view(&byte, 1), records));
  }
  ASSERT_EQ(records.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(records[i].packet, packets[i]) << "record " << i;
  }
  EXPECT_EQ(reader.report().lines_dropped, 0u);
  EXPECT_EQ(reader.report().lines_read, packets.size());
  EXPECT_EQ(reader.consumed_offset(), text.size());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST_F(ServeTest, TailReaderChunkBoundaryMidLine) {
  TraceTailReader reader;
  std::vector<TailRecord> records;
  EXPECT_EQ(reader.feed("12", records), 0u);
  EXPECT_EQ(reader.buffered_bytes(), 2u);
  EXPECT_EQ(reader.feed("3 45", records), 0u);
  EXPECT_EQ(reader.feed("6\n7 8\n", records), 2u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].packet, (traffic::Packet{123, 456}));
  EXPECT_EQ(records[1].packet, (traffic::Packet{7, 8}));
  // Offsets point one past each line's '\n'.
  EXPECT_EQ(records[0].end_offset, std::strlen("123 456\n"));
  EXPECT_EQ(records[1].end_offset, std::strlen("123 456\n7 8\n"));
}

TEST_F(ServeTest, TailReaderFinishFlushesUnterminatedTail) {
  TraceTailReader reader;
  std::vector<TailRecord> records;
  reader.feed("1 2\n3 4", records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(reader.buffered_bytes(), 3u);
  EXPECT_EQ(reader.finish(records), 1u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].packet, (traffic::Packet{3, 4}));
  // EOF terminates the line without a '\n' byte.
  EXPECT_EQ(reader.consumed_offset(), std::strlen("1 2\n3 4"));
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST_F(ServeTest, TailReaderSkipsCommentsAndBlanks) {
  TraceTailReader reader;
  std::vector<TailRecord> records;
  reader.feed("# header\n\n  \n5 6\n", records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packet, (traffic::Packet{5, 6}));
  EXPECT_EQ(reader.report().lines_read, 1u);
}

// end_offset is the crash-resume anchor: a second reader rebased at any
// record's end_offset and fed the remaining bytes must produce exactly
// the remaining records.
TEST_F(ServeTest, TailReaderEndOffsetIsExactResumeAnchor) {
  const auto packets = synth_packets(50, 97);
  const std::string text = to_trace_text(packets);
  TraceTailReader reader;
  std::vector<TailRecord> records;
  reader.feed(text, records);
  ASSERT_EQ(records.size(), packets.size());

  for (std::size_t cut : {std::size_t{0}, std::size_t{24},
                          packets.size() - 1}) {
    const std::uint64_t anchor = records[cut].end_offset;
    TraceTailReader resumed({}, anchor);
    std::vector<TailRecord> rest;
    resumed.feed(std::string_view(text).substr(anchor), rest);
    ASSERT_EQ(rest.size(), packets.size() - cut - 1) << "cut " << cut;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      EXPECT_EQ(rest[i].packet, records[cut + 1 + i].packet);
      EXPECT_EQ(rest[i].end_offset, records[cut + 1 + i].end_offset);
    }
  }
}

TEST_F(ServeTest, TailReaderPolicyMatchesReadTrace) {
  // Strict: the malformed line throws with read_trace's semantics.
  {
    TraceTailReader reader;  // default policy is kStrict
    std::vector<TailRecord> records;
    reader.feed("1 2\n", records);
    EXPECT_THROW(reader.feed("bogus line\n", records), DataError);
  }
  // Skip: dropped and counted, stream continues.
  {
    IngestOptions opts;
    opts.policy = ErrorPolicy::kSkip;
    TraceTailReader reader(opts);
    std::vector<TailRecord> records;
    reader.feed("1 2\nbogus\n3 4\n", records);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(reader.report().lines_dropped, 1u);
  }
  // Skip with an exhausted budget: throws once drops exceed it.
  {
    IngestOptions opts;
    opts.policy = ErrorPolicy::kSkip;
    opts.max_bad_lines = 1;
    TraceTailReader reader(opts);
    std::vector<TailRecord> records;
    reader.feed("junk one\n", records);
    EXPECT_THROW(reader.feed("junk two\n", records), DataError);
  }
}

TEST_F(ServeTest, TailReaderResetAtDropsPartialLine) {
  TraceTailReader reader;
  std::vector<TailRecord> records;
  reader.feed("1 2\n3 ", records);
  EXPECT_EQ(reader.buffered_bytes(), 2u);
  reader.reset_at(reader.consumed_offset());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  // Re-reading from the reset offset parses the line exactly once.
  reader.feed("3 4\n", records);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].packet, (traffic::Packet{3, 4}));
}

// ------------------------------------------------------------- queue

TEST_F(ServeTest, QueueFifoThenCloseDrains) {
  BoundedRecordQueue q(8, serve::BackpressurePolicy::kBlock);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(q.push({{1, 2}, i}), BoundedRecordQueue::PushResult::kOk);
  }
  q.close();
  EXPECT_EQ(q.push({{9, 9}, 9}), BoundedRecordQueue::PushResult::kClosed);
  TailRecord rec;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(rec));
    EXPECT_EQ(rec.end_offset, i);
  }
  EXPECT_FALSE(q.pop(rec));
}

TEST_F(ServeTest, QueueDropNewestShedsIncoming) {
  BoundedRecordQueue q(2, serve::BackpressurePolicy::kDropNewest);
  EXPECT_EQ(q.push({{0, 0}, 0}), BoundedRecordQueue::PushResult::kOk);
  EXPECT_EQ(q.push({{0, 0}, 1}), BoundedRecordQueue::PushResult::kOk);
  EXPECT_EQ(q.push({{0, 0}, 2}),
            BoundedRecordQueue::PushResult::kDroppedNewest);
  EXPECT_EQ(q.dropped(), 1u);
  q.close();
  TailRecord rec;
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 0u);
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 1u);
  EXPECT_FALSE(q.pop(rec));
}

TEST_F(ServeTest, QueueDropOldestEvictsHead) {
  BoundedRecordQueue q(2, serve::BackpressurePolicy::kDropOldest);
  q.push({{0, 0}, 0});
  q.push({{0, 0}, 1});
  EXPECT_EQ(q.push({{0, 0}, 2}),
            BoundedRecordQueue::PushResult::kDroppedOldest);
  EXPECT_EQ(q.dropped(), 1u);
  q.close();
  TailRecord rec;
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 1u);
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 2u);
}

TEST_F(ServeTest, QueueBlockPolicyWaitsForConsumer) {
  BoundedRecordQueue q(1, serve::BackpressurePolicy::kBlock);
  ASSERT_EQ(q.push({{0, 0}, 0}), BoundedRecordQueue::PushResult::kOk);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    const auto r = q.push({{0, 0}, 1});  // blocks until the pop below
    EXPECT_EQ(r, BoundedRecordQueue::PushResult::kOk);
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_admitted.load());
  TailRecord rec;
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 0u);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(q.pop(rec));
  EXPECT_EQ(rec.end_offset, 1u);
}

TEST_F(ServeTest, QueueAbortUnblocksBothEnds) {
  BoundedRecordQueue q(1, serve::BackpressurePolicy::kBlock);
  q.push({{0, 0}, 0});
  std::thread producer([&] {
    EXPECT_EQ(q.push({{0, 0}, 1}), BoundedRecordQueue::PushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.abort();
  producer.join();
  TailRecord rec;
  EXPECT_FALSE(q.pop(rec));  // aborted queues drop queued records too
}

TEST_F(ServeTest, ParseBackpressureRoundTrips) {
  using serve::BackpressurePolicy;
  EXPECT_EQ(serve::parse_backpressure("block"), BackpressurePolicy::kBlock);
  EXPECT_EQ(serve::parse_backpressure("drop-oldest"),
            BackpressurePolicy::kDropOldest);
  EXPECT_EQ(serve::parse_backpressure("drop-newest"),
            BackpressurePolicy::kDropNewest);
  EXPECT_THROW(serve::parse_backpressure("dropoldest"), InvalidArgument);
  for (auto p : {BackpressurePolicy::kBlock, BackpressurePolicy::kDropOldest,
                 BackpressurePolicy::kDropNewest}) {
    EXPECT_EQ(serve::parse_backpressure(serve::to_string(p)), p);
  }
}

// ----------------------------------------------------- failpoint spec

TEST_F(ServeTest, ArmFromSpecArmsWithFiresAndSkip) {
  failpoints::arm_from_spec("spec.test:2:1");
  // Hit 1 passes (skip), hits 2-3 fire, hit 4 passes (fires exhausted).
  EXPECT_NO_THROW(PALU_FAILPOINT("spec.test"));
  EXPECT_THROW(PALU_FAILPOINT("spec.test"), ConvergenceError);
  EXPECT_THROW(PALU_FAILPOINT("spec.test"), ConvergenceError);
  EXPECT_NO_THROW(PALU_FAILPOINT("spec.test"));
}

TEST_F(ServeTest, ArmFromSpecMultipleClauses) {
  failpoints::arm_from_spec("spec.a:1,spec.b");
  EXPECT_THROW(PALU_FAILPOINT("spec.a"), ConvergenceError);
  EXPECT_NO_THROW(PALU_FAILPOINT("spec.a"));
  EXPECT_THROW(PALU_FAILPOINT("spec.b"), ConvergenceError);
  EXPECT_THROW(PALU_FAILPOINT("spec.b"), ConvergenceError);  // unbounded
}

TEST_F(ServeTest, ArmFromSpecRejectsMalformedClauses) {
  EXPECT_THROW(failpoints::arm_from_spec(":3"), InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:"), InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:abc"), InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:1:xyz"), InvalidArgument);
  // A bare sign is not a number (it used to parse as 0 and silently arm
  // a never-firing failpoint), and a digit string past INT_MAX must be
  // rejected rather than overflow.
  EXPECT_THROW(failpoints::arm_from_spec("site:-"), InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:1:-"), InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:99999999999999999999"),
               InvalidArgument);
  EXPECT_THROW(failpoints::arm_from_spec("site:2147483648"),
               InvalidArgument);
  EXPECT_NO_THROW(failpoints::arm_from_spec("spec.max:2147483647"));
  // Empty clauses between commas are tolerated (trailing comma idiom).
  EXPECT_NO_THROW(failpoints::arm_from_spec("spec.c:1,"));
}

// -------------------------------------------------------- checkpoint

// Builds an estimator that has digested `windows` synthetic windows.
core::WindowedStreamingEstimator digested_estimator(std::size_t windows,
                                                    std::uint64_t seed) {
  const auto packets = synth_packets(windows * 2000, seed);
  core::WindowedStreamingEstimator est;
  traffic::WindowAccumulator acc;
  for (std::size_t w = 0; w < windows; ++w) {
    acc.begin_window();
    for (std::size_t i = 0; i < 2000; ++i) {
      const auto& p = packets[w * 2000 + i];
      acc.add(p.src, p.dst);
    }
    est.refit_window(acc.histogram(traffic::Quantity::kUndirectedDegree));
  }
  return est;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_snapshot_equal(const core::StreamingFitSnapshot& a,
                           const core::StreamingFitSnapshot& b) {
  EXPECT_EQ(a.freshness, b.freshness);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.warm_base, b.warm_base);
  EXPECT_TRUE(bitwise_equal(a.fit.alpha, b.fit.alpha));
  EXPECT_TRUE(bitwise_equal(a.fit.c, b.fit.c));
  EXPECT_TRUE(bitwise_equal(a.fit.mu, b.fit.mu));
  EXPECT_TRUE(bitwise_equal(a.fit.u, b.fit.u));
  EXPECT_TRUE(bitwise_equal(a.fit.l, b.fit.l));
  EXPECT_TRUE(bitwise_equal(a.fit.tail_r_squared, b.fit.tail_r_squared));
  EXPECT_EQ(a.fit.tail_points, b.fit.tail_points);
  EXPECT_EQ(a.fit.mu_identifiable, b.fit.mu_identifiable);
  EXPECT_EQ(a.zm_valid, b.zm_valid);
  if (a.zm_valid && b.zm_valid) {
    EXPECT_TRUE(bitwise_equal(a.zm.alpha, b.zm.alpha));
    EXPECT_TRUE(bitwise_equal(a.zm.delta, b.zm.delta));
    EXPECT_EQ(a.zm.dmax, b.zm.dmax);
    EXPECT_TRUE(bitwise_equal(a.zm.objective, b.zm.objective));
    EXPECT_EQ(a.zm.converged, b.zm.converged);
  }
}

TEST_F(ServeTest, CheckpointRoundTripIsExact) {
  serve::Checkpoint ck;
  ck.input_offset = 123456789;
  ck.packets_ingested = 6000;
  ck.windows_published = 3;
  ck.window_packets = 2000;
  ck.quantity = "undirected_degree";
  ck.sliding_horizon = 4;
  ck.warm_start = true;
  ck.estimator = digested_estimator(3, 11).state();
  ck.estimator.consecutive_stale = 2;  // non-zero so the field must travel

  const std::string path = temp_path("roundtrip.ck");
  serve::save_checkpoint(path, ck);
  const serve::Checkpoint back = serve::load_checkpoint(path);

  EXPECT_EQ(back.input_offset, ck.input_offset);
  EXPECT_EQ(back.packets_ingested, ck.packets_ingested);
  EXPECT_EQ(back.windows_published, ck.windows_published);
  EXPECT_EQ(back.window_packets, ck.window_packets);
  EXPECT_EQ(back.quantity, ck.quantity);
  EXPECT_EQ(back.sliding_horizon, ck.sliding_horizon);
  EXPECT_EQ(back.warm_start, ck.warm_start);
  EXPECT_EQ(back.estimator.windows, ck.estimator.windows);
  EXPECT_EQ(back.estimator.stale_windows, ck.estimator.stale_windows);
  EXPECT_EQ(back.estimator.consecutive_stale,
            ck.estimator.consecutive_stale);
  expect_snapshot_equal(back.estimator.window_lane,
                        ck.estimator.window_lane);
  expect_snapshot_equal(back.estimator.sliding_lane,
                        ck.estimator.sliding_lane);
  ASSERT_EQ(back.estimator.horizon.size(), ck.estimator.horizon.size());
  for (std::size_t i = 0; i < ck.estimator.horizon.size(); ++i) {
    EXPECT_EQ(back.estimator.horizon[i].sorted(),
              ck.estimator.horizon[i].sorted());
  }
  std::remove(path.c_str());
}

TEST_F(ServeTest, CheckpointRejectsCorruption) {
  serve::Checkpoint ck;
  ck.window_packets = 100;
  ck.quantity = "undirected_degree";
  ck.sliding_horizon = 2;
  const std::string path = temp_path("corrupt.ck");
  serve::save_checkpoint(path, ck);
  const std::string good = read_file(path);

  EXPECT_THROW(serve::load_checkpoint(temp_path("no_such.ck")), DataError);

  std::string flipped = good;
  flipped[good.find("offset") + 7] = 'X';  // damage a payload byte
  write_file(path, flipped);
  EXPECT_THROW(serve::load_checkpoint(path), DataError);

  write_file(path, good.substr(0, good.size() / 2));  // truncate
  EXPECT_THROW(serve::load_checkpoint(path), DataError);

  write_file(path, good);  // intact again: loads
  EXPECT_NO_THROW(serve::load_checkpoint(path));
  std::remove(path.c_str());
}

// Regression: restore() used to zero the consecutive-staleness counter,
// so a daemon restored mid-stale-streak reported a staleness gauge that
// diverged from an uninterrupted run over the same windows.  The counter
// must survive the checkpoint round trip and keep counting from where
// the interrupted run left off.
TEST_F(ServeTest, RestorePreservesConsecutiveStaleness) {
  const auto packets = synth_packets(6 * 1500, 17);
  std::vector<stats::DegreeHistogram> windows;
  traffic::WindowAccumulator acc;
  for (std::size_t w = 0; w < 6; ++w) {
    acc.begin_window();
    for (std::size_t i = 0; i < 1500; ++i) {
      const auto& p = packets[w * 1500 + i];
      acc.add(p.src, p.dst);
    }
    windows.push_back(acc.histogram(traffic::Quantity::kUndirectedDegree));
  }

  // Every refit force-degraded: the streak grows by one per window.
  core::WindowedStreamingEstimator reference;
  for (const auto& w : windows) reference.refit_window(w, "fit timeout");
  ASSERT_EQ(reference.consecutive_stale(), 6u);

  // Interrupted run: cut after 3 stale windows, round-trip the state
  // through a checkpoint file, replay the remaining stale windows.
  core::WindowedStreamingEstimator before;
  for (std::size_t w = 0; w < 3; ++w)
    before.refit_window(windows[w], "fit timeout");
  ASSERT_EQ(before.consecutive_stale(), 3u);

  serve::Checkpoint ck;
  ck.window_packets = 1500;
  ck.quantity = "undirected_degree";
  ck.sliding_horizon = before.options().sliding_horizon;
  ck.estimator = before.state();
  const std::string path = temp_path("stale.ck");
  serve::save_checkpoint(path, ck);
  const serve::Checkpoint loaded = serve::load_checkpoint(path);
  std::remove(path.c_str());

  core::WindowedStreamingEstimator after;
  after.restore(loaded.estimator);
  EXPECT_EQ(after.consecutive_stale(), 3u);
  for (std::size_t w = 3; w < 6; ++w)
    after.refit_window(windows[w], "fit timeout");
  EXPECT_EQ(after.consecutive_stale(), reference.consecutive_stale());
  EXPECT_EQ(after.state().stale_windows, reference.state().stale_windows);
}

// The acceptance property (3 seeds): checkpoint the estimator at a
// random window boundary, restore into a fresh estimator, replay the
// remaining windows, and require every subsequent refit bit-identical
// to the uninterrupted run's.
TEST_F(ServeTest, CheckpointRestoreAtRandomBoundaryIsByteIdentical) {
  for (const std::uint64_t seed : {3u, 17u, 202u}) {
    constexpr std::size_t kWindows = 6;
    constexpr std::size_t kPerWindow = 1500;
    const auto packets = synth_packets(kWindows * kPerWindow, seed);

    std::vector<stats::DegreeHistogram> windows;
    traffic::WindowAccumulator acc;
    for (std::size_t w = 0; w < kWindows; ++w) {
      acc.begin_window();
      for (std::size_t i = 0; i < kPerWindow; ++i) {
        const auto& p = packets[w * kPerWindow + i];
        acc.add(p.src, p.dst);
      }
      windows.push_back(
          acc.histogram(traffic::Quantity::kUndirectedDegree));
    }

    // Uninterrupted reference run.
    core::WindowedStreamingEstimator reference;
    std::vector<core::StreamingRefit> ref_refits;
    for (const auto& w : windows) ref_refits.push_back(reference.refit_window(w));

    // Interrupted run: cut at a seed-derived boundary, round-trip the
    // state through an actual checkpoint file, replay the tail.
    const std::size_t cut = 1 + static_cast<std::size_t>(
                                    Rng(seed).uniform_index(kWindows - 1));
    core::WindowedStreamingEstimator before;
    for (std::size_t w = 0; w < cut; ++w) before.refit_window(windows[w]);

    serve::Checkpoint ck;
    ck.window_packets = kPerWindow;
    ck.quantity = "undirected_degree";
    ck.sliding_horizon = before.options().sliding_horizon;
    ck.estimator = before.state();
    const std::string path = temp_path("boundary.ck");
    serve::save_checkpoint(path, ck);
    const serve::Checkpoint loaded = serve::load_checkpoint(path);
    std::remove(path.c_str());

    core::WindowedStreamingEstimator after;
    after.restore(loaded.estimator);
    for (std::size_t w = cut; w < kWindows; ++w) {
      const auto got = after.refit_window(windows[w]);
      SCOPED_TRACE("seed " + std::to_string(seed) + " cut " +
                   std::to_string(cut) + " window " + std::to_string(w));
      EXPECT_EQ(got.window_index, ref_refits[w].window_index);
      EXPECT_EQ(got.fresh, ref_refits[w].fresh);
      expect_snapshot_equal(got.window, ref_refits[w].window);
      expect_snapshot_equal(got.sliding, ref_refits[w].sliding);
    }
  }
}

// ------------------------------------------------------------ daemon

serve::ServeOptions daemon_opts(const std::string& trace_path,
                                obs::Registry& registry,
                                std::ostringstream& out) {
  serve::ServeOptions opts;
  opts.input_path = trace_path;
  opts.window_packets = 1500;
  opts.metrics = &registry;
  opts.out = &out;
  opts.install_signal_handlers = false;
  opts.backoff_initial_ms = 1.0;  // keep fault-path tests fast
  opts.backoff_max_ms = 5.0;
  return opts;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST_F(ServeTest, DaemonServesEveryWindowToEof) {
  const std::string trace = temp_path("eof.trace");
  write_file(trace, to_trace_text(synth_packets(6000, 5)));

  obs::Registry registry;
  std::ostringstream out;
  serve::ServeDaemon daemon(daemon_opts(trace, registry, out));
  EXPECT_EQ(daemon.run(), 0);
  EXPECT_EQ(daemon.windows_published(), 4u);  // 6000 / 1500

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("window=" + std::to_string(i) + " ", 0), 0u);
    EXPECT_NE(lines[i].find("degraded=- "), std::string::npos);
    EXPECT_NE(lines[i].find("w_state=fresh"), std::string::npos);
  }
  EXPECT_EQ(registry.counter(obs::names::kServePackets).value(), 6000u);
  EXPECT_EQ(registry.counter(obs::names::kServeWindowsFitted).value(), 4u);
  EXPECT_EQ(registry.counter(obs::names::kServeWindowsStale).value(), 0u);
  std::remove(trace.c_str());
}

TEST_F(ServeTest, DaemonStrictBadDataExitsThree) {
  const std::string trace = temp_path("bad.trace");
  write_file(trace, "1 2\nnot a packet\n3 4\n");

  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.window_packets = 1;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 3);
  EXPECT_FALSE(daemon.fatal_message().empty());
  std::remove(trace.c_str());
}

// The restore-equivalence acceptance check, in process: an interrupted
// run resumed from its checkpoint emits byte-identical result lines to
// the uninterrupted run from the boundary on.
TEST_F(ServeTest, DaemonRestoreResumesByteIdentical) {
  const std::string trace = temp_path("restore.trace");
  const std::string ck = temp_path("restore.ck");
  write_file(trace, to_trace_text(synth_packets(9000, 23)));

  obs::Registry reg_full;
  std::ostringstream full_out;
  serve::ServeDaemon full(daemon_opts(trace, reg_full, full_out));
  ASSERT_EQ(full.run(), 0);  // 6 windows

  obs::Registry reg_prefix;
  std::ostringstream prefix_out;
  auto prefix_opts = daemon_opts(trace, reg_prefix, prefix_out);
  prefix_opts.checkpoint_path = ck;
  prefix_opts.max_windows = 3;
  serve::ServeDaemon prefix(std::move(prefix_opts));
  ASSERT_EQ(prefix.run(), 0);

  obs::Registry reg_resume;
  std::ostringstream resume_out;
  auto resume_opts = daemon_opts(trace, reg_resume, resume_out);
  resume_opts.checkpoint_path = ck;
  resume_opts.restore = true;
  serve::ServeDaemon resumed(std::move(resume_opts));
  ASSERT_EQ(resumed.run(), 0);
  EXPECT_EQ(reg_resume.counter(obs::names::kServeRestores,
                               {{"outcome", "ok"}})
                .value(),
            1u);

  EXPECT_EQ(prefix_out.str() + resume_out.str(), full_out.str());
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

TEST_F(ServeTest, DaemonFitFailpointDegradesThenRecovers) {
  const std::string trace = temp_path("fitfp.trace");
  write_file(trace, to_trace_text(synth_packets(6000, 29)));

  failpoints::arm_from_spec("serve.fit:2");
  obs::Registry registry;
  std::ostringstream out;
  serve::ServeDaemon daemon(daemon_opts(trace, registry, out));
  EXPECT_EQ(daemon.run(), 0);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("degraded=injected"), std::string::npos);
  EXPECT_NE(lines[1].find("degraded=injected"), std::string::npos);
  EXPECT_NE(lines[2].find("degraded=- "), std::string::npos);
  EXPECT_NE(lines[3].find("degraded=- "), std::string::npos);
  EXPECT_NE(lines[2].find("w_state=fresh"), std::string::npos);
  EXPECT_EQ(registry.counter(obs::names::kServeWindowsStale).value(), 2u);
  EXPECT_EQ(registry.counter(obs::names::kServeWindowsFitted).value(), 4u);
  std::remove(trace.c_str());
}

TEST_F(ServeTest, DaemonIngestFailpointRestartIsLossless) {
  const std::string trace = temp_path("ingfp.trace");
  write_file(trace, to_trace_text(synth_packets(6000, 31)));

  obs::Registry reg_clean;
  std::ostringstream clean_out;
  serve::ServeDaemon clean(daemon_opts(trace, reg_clean, clean_out));
  ASSERT_EQ(clean.run(), 0);

  failpoints::arm_from_spec("serve.ingest:1");
  obs::Registry reg_faulty;
  std::ostringstream faulty_out;
  serve::ServeDaemon faulty(daemon_opts(trace, reg_faulty, faulty_out));
  EXPECT_EQ(faulty.run(), 0);
  EXPECT_EQ(faulty_out.str(), clean_out.str());
  EXPECT_EQ(reg_faulty
                .counter(obs::names::kServeStageRestarts,
                         {{"stage", "ingest"}})
                .value(),
            1u);
  std::remove(trace.c_str());
}

TEST_F(ServeTest, DaemonIngestFailpointUnboundedGivesUp) {
  const std::string trace = temp_path("ingup.trace");
  write_file(trace, to_trace_text(synth_packets(3000, 37)));

  failpoints::arm_from_spec("serve.ingest");
  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.max_stage_restarts = 3;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 1);
  EXPECT_FALSE(daemon.fatal_message().empty());
  EXPECT_EQ(registry
                .counter(obs::names::kServeStageRestarts,
                         {{"stage", "ingest"}})
                .value(),
            3u);
  std::remove(trace.c_str());
}

TEST_F(ServeTest, DaemonCheckpointFailpointKeepsServing) {
  const std::string trace = temp_path("ckfp.trace");
  const std::string ck = temp_path("ckfp.ck");
  write_file(trace, to_trace_text(synth_packets(6000, 41)));

  failpoints::arm_from_spec("serve.checkpoint");
  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.checkpoint_path = ck;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 0);
  EXPECT_EQ(daemon.windows_published(), 4u);
  EXPECT_GE(registry.counter(obs::names::kServeCheckpointFailures).value(),
            4u);
  EXPECT_EQ(registry.counter(obs::names::kServeCheckpointWrites).value(),
            0u);
  EXPECT_TRUE(read_file(ck).empty());  // never written
  std::remove(trace.c_str());
}

TEST_F(ServeTest, DaemonRestoreFailpointFallsBackToFreshStart) {
  const std::string trace = temp_path("refp.trace");
  const std::string ck = temp_path("refp.ck");
  write_file(trace, to_trace_text(synth_packets(6000, 43)));

  {  // produce a perfectly valid checkpoint at window 2
    obs::Registry registry;
    std::ostringstream out;
    auto opts = daemon_opts(trace, registry, out);
    opts.checkpoint_path = ck;
    opts.max_windows = 2;
    serve::ServeDaemon daemon(std::move(opts));
    ASSERT_EQ(daemon.run(), 0);
  }

  failpoints::arm_from_spec("serve.restore");
  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.checkpoint_path = ck;
  opts.restore = true;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 0);
  // Fresh start: the run begins at window 0, not at the checkpoint.
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("window=0 ", 0), 0u);
  EXPECT_EQ(registry
                .counter(obs::names::kServeRestores, {{"outcome", "failed"}})
                .value(),
            1u);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

TEST_F(ServeTest, DaemonRejectsMismatchedCheckpointFingerprint) {
  const std::string trace = temp_path("fp.trace");
  const std::string ck = temp_path("fp.ck");
  write_file(trace, to_trace_text(synth_packets(6000, 47)));

  {
    obs::Registry registry;
    std::ostringstream out;
    auto opts = daemon_opts(trace, registry, out);
    opts.checkpoint_path = ck;
    opts.max_windows = 2;
    serve::ServeDaemon daemon(std::move(opts));
    ASSERT_EQ(daemon.run(), 0);
  }

  // Same checkpoint, different N_V: restoring would be silently wrong,
  // so the daemon must count a failed restore and start fresh.
  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.checkpoint_path = ck;
  opts.restore = true;
  opts.window_packets = 1000;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 0);
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("window=0 ", 0), 0u);
  EXPECT_EQ(registry
                .counter(obs::names::kServeRestores, {{"outcome", "failed"}})
                .value(),
            1u);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

// Follow-mode drain: the daemon tails a file that never ends; a
// request_stop() (what SIGINT/SIGTERM deliver) must drain the queue,
// publish nothing half-finished, flush a final checkpoint, and return 0.
TEST_F(ServeTest, DaemonRequestStopDrainsAndCheckpoints) {
  const std::string trace = temp_path("drain.trace");
  const std::string ck = temp_path("drain.ck");
  write_file(trace, to_trace_text(synth_packets(4500, 53)));

  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.follow = true;  // EOF polls instead of finishing
  opts.poll_interval_ms = 5.0;
  opts.checkpoint_path = ck;
  serve::ServeDaemon daemon(std::move(opts));

  std::thread runner([&] { EXPECT_EQ(daemon.run(), 0); });
  // Wait (bounded) for the three full windows to be served.
  for (int i = 0; i < 2000 && daemon.windows_published() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(daemon.windows_published(), 3u);
  daemon.request_stop();
  runner.join();

  EXPECT_EQ(lines_of(out.str()).size(), 3u);
  // The final checkpoint reflects the last completed boundary.
  const serve::Checkpoint saved = serve::load_checkpoint(ck);
  EXPECT_EQ(saved.windows_published, 3u);
  EXPECT_EQ(saved.estimator.windows, 3u);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

// A result-line sink whose flush blocks until released: pins the fit
// stage inside its first publish so a test can pile complete windows
// into the queue before requesting a stop.
class GateBuf : public std::stringbuf {
 public:
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  bool blocked() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocked_;
  }

 protected:
  int sync() override {
    std::unique_lock<std::mutex> lock(mutex_);
    blocked_ = true;
    cv_.wait(lock, [this] { return open_; });
    blocked_ = false;
    return std::stringbuf::sync();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  bool blocked_ = false;
};

// The hard half of the drain contract: a stop that arrives while the
// queue still holds complete windows must not discard them.  The fit
// stage keeps popping to the queue's close and publishes every complete
// window before the daemon exits 0.  (The easy half — stop with an
// already-empty queue — is DaemonRequestStopDrainsAndCheckpoints.)
TEST_F(ServeTest, DaemonStopWithQueuedWindowsDrainsThemAll) {
  const std::string trace = temp_path("drainq.trace");
  const std::string ck = temp_path("drainq.ck");
  write_file(trace, to_trace_text(synth_packets(4500, 61)));

  GateBuf gate;
  std::ostream gated_out(&gate);
  obs::Registry registry;
  serve::ServeOptions opts;
  opts.input_path = trace;
  opts.window_packets = 1500;
  opts.metrics = &registry;
  opts.out = &gated_out;
  opts.install_signal_handlers = false;
  opts.follow = true;  // EOF polls, so only a stop ends ingest
  opts.poll_interval_ms = 5.0;
  opts.checkpoint_path = ck;
  serve::ServeDaemon daemon(std::move(opts));

  std::thread runner([&] { EXPECT_EQ(daemon.run(), 0); });
  // Wait (bounded) until the fit stage is pinned inside window 0's
  // publish and the ingest stage has queued the other two full windows.
  auto& packets = registry.counter(obs::names::kServePackets);
  for (int i = 0;
       i < 2000 && !(gate.blocked() && packets.value() >= 4500); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(gate.blocked());
  ASSERT_GE(packets.value(), 4500u);

  daemon.request_stop();  // windows 1 and 2 are complete in the queue
  gate.release();
  runner.join();

  EXPECT_EQ(daemon.windows_published(), 3u);
  EXPECT_EQ(lines_of(gate.str()).size(), 3u);
  const serve::Checkpoint saved = serve::load_checkpoint(ck);
  EXPECT_EQ(saved.windows_published, 3u);
  EXPECT_EQ(saved.estimator.windows, 3u);
  std::remove(trace.c_str());
  std::remove(ck.c_str());
}

TEST_F(ServeTest, DaemonWritesSnapshotFiles) {
  const std::string trace = temp_path("snap.trace");
  const std::string snap = temp_path("snap.json");
  write_file(trace, to_trace_text(synth_packets(3000, 59)));

  obs::Registry registry;
  std::ostringstream out;
  auto opts = daemon_opts(trace, registry, out);
  opts.snapshot_path = snap;
  opts.snapshot_interval_ms = 10.0;
  serve::ServeDaemon daemon(std::move(opts));
  EXPECT_EQ(daemon.run(), 0);

  const std::string json = read_file(snap);
  EXPECT_NE(json.find("palu_serve_windows_fitted_total"),
            std::string::npos);
  const std::string prom =
      read_file(snap.substr(0, snap.size() - 5) + ".prom");
  EXPECT_NE(prom.find("palu_serve_packets_total"), std::string::npos);
  EXPECT_GE(registry.counter(obs::names::kServeSnapshotWrites).value(), 1u);
  std::remove(trace.c_str());
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace palu
