// Token-level view of a C++ source file for palu_lint's analysis passes.
//
// The tokenizer is deliberately dependency-free (no palu headers, no
// third-party lexers) and deliberately approximate: it does not expand
// macros or track templates, but it is exact about the things that made
// the old strip-and-regex linter unsound —
//
//   * string and character literals (including raw strings and encoding
//     prefixes) never leak their contents into the code token stream, so
//     a string containing `#include "palu/serve/x.hpp"` or `std::rand`
//     cannot trip a rule;
//   * comments (//, /* */, and //-comments continued by a line splice)
//     are captured as their own token stream, which is the only place
//     suppression markers are read from;
//   * backslash-newline splices are resolved before lexing, so a spliced
//     preprocessor line or comment behaves as one logical line;
//   * preprocessor directives are recognized at logical-line starts, and
//     <...> after #include becomes a single header-name token.
//
// Every token carries the 1-based line/column of its first character in
// the original (unspliced) file, so diagnostics point at real source.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace palu::analyze {

enum class TokKind {
  kIdent,       ///< identifier or keyword
  kNumber,      ///< pp-number (digit separators included)
  kString,      ///< string literal; text = contents without quotes/prefix
  kChar,        ///< character literal; text = contents without quotes
  kPunct,       ///< punctuation; `::` and `->` are single tokens
  kDirective,   ///< `#name` at the start of a logical line (e.g. #include)
  kHeaderName,  ///< <...> after #include; text = path without brackets
  kComment,     ///< comment text; may contain newlines (block comments)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based
  std::size_t col = 0;   ///< 1-based
};

struct TokenizedFile {
  std::vector<Token> code;      ///< everything except comments
  std::vector<Token> comments;  ///< comments, in source order
  std::size_t num_lines = 0;    ///< physical lines in the file
};

/// Tokenizes the full text of one source file.
TokenizedFile tokenize(const std::string& text);

}  // namespace palu::analyze
