#include "palu/core/streaming.hpp"

#include <cmath>
#include <utility>

#include "palu/common/error.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::core {

void StreamingPaluEstimator::add_window(
    const stats::DegreeHistogram& window) {
  merged_.merge(window);
  ++windows_;
  try {
    latest_ = fit_palu(merged_, opts_);
    history_.push_back(*latest_);
    if (history_cap_ > 0 && history_.size() > history_cap_) {
      // Bounded mode: drop oldest.  The cap is operator-sized (tens to
      // thousands), so the front erase stays cheap next to the refit.
      history_.erase(history_.begin(),
                     history_.end() -
                         static_cast<std::ptrdiff_t>(history_cap_));
    }
  } catch (const DataError&) {
    // Aggregate still too thin (e.g. tail shorter than tail_min); keep
    // accumulating.
  }
}

const PaluFit& StreamingPaluEstimator::current() const {
  if (!latest_) {
    throw DataError(
        "StreamingPaluEstimator: no fittable aggregate yet");
  }
  return *latest_;
}

// ---------------------------------------------------------------------------
// WindowedStreamingEstimator
// ---------------------------------------------------------------------------

std::string_view to_string(FitFreshness f) noexcept {
  switch (f) {
    case FitFreshness::kNone:
      return "none";
    case FitFreshness::kFresh:
      return "fresh";
    case FitFreshness::kStale:
      return "stale";
  }
  return "none";
}

WindowedStreamingEstimator::WindowedStreamingEstimator(
    StreamingOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.sliding_horizon == 0) {
    throw InvalidArgument(
        "WindowedStreamingEstimator: sliding_horizon must be >= 1");
  }
}

StreamingFitSnapshot WindowedStreamingEstimator::degrade(
    const StreamingFitSnapshot& previous, std::string_view why) {
  StreamingFitSnapshot out = previous;
  if (out.freshness == FitFreshness::kFresh) {
    out.freshness = FitFreshness::kStale;
  }
  out.error = std::string(why);
  return out;
}

StreamingFitSnapshot WindowedStreamingEstimator::fit_lane(
    const stats::DegreeHistogram& h,
    const StreamingFitSnapshot& previous) {
  const bool warm = opts_.warm_start && previous.has_fit();
  const RobustPaluFit robust =
      warm ? robust_fit_palu_warm(h, previous.fit, opts_.fit, opts_.robust,
                                  opts_.refine_max)
           : robust_fit_palu(h, opts_.fit, opts_.robust, opts_.refine_max);
  if (!robust.ok()) {
    return degrade(previous, robust.error.empty()
                                 ? "fit failed on every stage"
                                 : robust.error);
  }
  StreamingFitSnapshot out;
  out.fit = robust.fit;
  out.stage = robust.stage;
  out.freshness = FitFreshness::kFresh;
  out.warm_base = robust.warm_base;
  if (opts_.fit_zm) {
    // The ZM companion rides along best-effort: a window whose pooled
    // distribution cannot be fitted keeps the previous ZM parameters.
    try {
      fit::ZmFitOptions zopts;
      if (warm && previous.zm_valid && std::isfinite(previous.zm.alpha) &&
          previous.zm.alpha > 0.0 && previous.zm.delta > -1.0) {
        zopts.alpha_init = previous.zm.alpha;
        zopts.delta_init = previous.zm.delta;
      }
      out.zm = fit::fit_zipf_mandelbrot(
          stats::LogBinned::from_histogram(h), h.max_degree(), zopts);
      out.zm_valid = true;
    } catch (const Error&) {
      out.zm = previous.zm;
      out.zm_valid = previous.zm_valid;
    }
  }
  return out;
}

StreamingRefit WindowedStreamingEstimator::refit_window(
    const stats::DegreeHistogram& window, std::string_view forced_error) {
  // The window enters the horizon unconditionally — even when this refit
  // is force-degraded — so a checkpoint restore that replays the same
  // windows reconstructs the same horizon regardless of which refits
  // degraded along the way.
  horizon_.push_back(window);
  while (horizon_.size() > opts_.sliding_horizon) horizon_.pop_front();

  StreamingRefit out;
  out.window_index = state_.windows;
  ++state_.windows;

  if (!forced_error.empty()) {
    state_.window_lane = degrade(state_.window_lane, forced_error);
    state_.sliding_lane = degrade(state_.sliding_lane, forced_error);
    ++state_.stale_windows;
    ++state_.consecutive_stale;
    out.window = state_.window_lane;
    out.sliding = state_.sliding_lane;
    out.fresh = false;
    return out;
  }

  state_.window_lane = fit_lane(window, state_.window_lane);
  if (horizon_.size() == 1) {
    // One window in the horizon: the sliding lane is the tumbling lane.
    state_.sliding_lane = state_.window_lane;
  } else {
    stats::DegreeHistogram merged;
    for (const auto& h : horizon_) merged.merge(h);
    state_.sliding_lane = fit_lane(merged, state_.sliding_lane);
  }

  out.fresh = state_.window_lane.freshness == FitFreshness::kFresh;
  if (out.fresh) {
    state_.consecutive_stale = 0;
  } else {
    ++state_.stale_windows;
    ++state_.consecutive_stale;
  }
  out.window = state_.window_lane;
  out.sliding = state_.sliding_lane;
  return out;
}

StreamingState WindowedStreamingEstimator::state() const {
  StreamingState out = state_;
  out.horizon.assign(horizon_.begin(), horizon_.end());
  return out;
}

void WindowedStreamingEstimator::restore(StreamingState state) {
  horizon_.assign(state.horizon.begin(), state.horizon.end());
  while (horizon_.size() > opts_.sliding_horizon) horizon_.pop_front();
  state.horizon.clear();
  // consecutive_stale rides along inside the state: an earlier revision
  // zeroed it here, which made a --restore'd daemon's staleness gauge
  // diverge from an uninterrupted run.
  state_ = std::move(state);
}

}  // namespace palu::core
