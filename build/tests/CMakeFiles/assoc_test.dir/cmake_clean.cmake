file(REMOVE_RECURSE
  "CMakeFiles/assoc_test.dir/assoc_test.cpp.o"
  "CMakeFiles/assoc_test.dir/assoc_test.cpp.o.d"
  "assoc_test"
  "assoc_test.pdb"
  "assoc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
