
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/gamma.cpp" "src/math/CMakeFiles/palu_math.dir/gamma.cpp.o" "gcc" "src/math/CMakeFiles/palu_math.dir/gamma.cpp.o.d"
  "/root/repo/src/math/incomplete_gamma.cpp" "src/math/CMakeFiles/palu_math.dir/incomplete_gamma.cpp.o" "gcc" "src/math/CMakeFiles/palu_math.dir/incomplete_gamma.cpp.o.d"
  "/root/repo/src/math/lambda_ratio.cpp" "src/math/CMakeFiles/palu_math.dir/lambda_ratio.cpp.o" "gcc" "src/math/CMakeFiles/palu_math.dir/lambda_ratio.cpp.o.d"
  "/root/repo/src/math/stable.cpp" "src/math/CMakeFiles/palu_math.dir/stable.cpp.o" "gcc" "src/math/CMakeFiles/palu_math.dir/stable.cpp.o.d"
  "/root/repo/src/math/zeta.cpp" "src/math/CMakeFiles/palu_math.dir/zeta.cpp.o" "gcc" "src/math/CMakeFiles/palu_math.dir/zeta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
