#include "palu/io/tail.hpp"

#include <utility>

#include "palu/common/error.hpp"
#include "ingest_gate.hpp"
#include "trace_line.hpp"

namespace palu::io {

// The internal IngestGate keeps references to the options and the report,
// so both must live alongside it with stable addresses.
struct TraceTailReader::Gate {
  explicit Gate(const IngestOptions& o) : opts(o), gate("trace_tail", opts, report) {}

  IngestOptions opts;
  IngestReport report;
  detail::IngestGate gate;
  std::size_t line_number = 0;
};

TraceTailReader::TraceTailReader(const IngestOptions& opts,
                                 std::uint64_t base_offset)
    : gate_(std::make_unique<Gate>(opts)), consumed_(base_offset) {}

TraceTailReader::~TraceTailReader() = default;

const IngestReport& TraceTailReader::report() const noexcept {
  return gate_->report;
}

std::size_t TraceTailReader::consume_line(std::string_view line,
                                          std::vector<TailRecord>& out) {
  ++gate_->line_number;
  const std::string_view body = detail::trim(line);
  if (body.empty() || body.front() == '#') return 0;
  ++gate_->report.lines_read;
  auto packet = detail::parse_packet_line(body);
  if (packet.ok()) {
    gate_->gate.kept();
    out.push_back(TailRecord{packet.value(), consumed_});
    return 1;
  }
  if (gate_->opts.policy == ErrorPolicy::kRepair) {
    const auto salvaged = detail::salvage_u64(body, 2);
    if (salvaged.size() == 2) {
      gate_->gate.repaired(gate_->line_number, packet.error(),
                           std::string(line));
      out.push_back(
          TailRecord{traffic::Packet{salvaged[0], salvaged[1]}, consumed_});
      return 1;
    }
  }
  gate_->gate.drop(gate_->line_number, packet.error(), std::string(line));
  return 0;
}

std::size_t TraceTailReader::feed(std::string_view chunk,
                                  std::vector<TailRecord>& out) {
  std::size_t emitted = 0;
  while (!chunk.empty()) {
    const std::size_t nl = chunk.find('\n');
    if (nl == std::string_view::npos) {
      // No terminator yet: the fragment is an incomplete line, not a
      // malformed one.  Hold it back until more bytes arrive.
      buffer_.append(chunk);
      break;
    }
    std::string_view line;
    if (buffer_.empty()) {
      line = chunk.substr(0, nl);
    } else {
      buffer_.append(chunk.substr(0, nl));
      line = buffer_;
    }
    consumed_ += line.size() + 1;  // the line and its '\n'
    emitted += consume_line(line, out);
    buffer_.clear();
    chunk.remove_prefix(nl + 1);
  }
  return emitted;
}

std::size_t TraceTailReader::finish(std::vector<TailRecord>& out) {
  if (buffer_.empty()) return 0;
  std::string line = std::move(buffer_);
  buffer_.clear();
  consumed_ += line.size();  // end-of-stream terminates the line
  return consume_line(line, out);
}

void TraceTailReader::reset_at(std::uint64_t offset) {
  buffer_.clear();
  consumed_ = offset;
}

}  // namespace palu::io
