#include "palu/graph/graph.hpp"

#include <algorithm>

#include "palu/common/error.hpp"

namespace palu::graph {

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    PALU_CHECK(e.u < num_nodes_ && e.v < num_nodes_,
               "Graph: edge endpoint out of range");
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  PALU_CHECK(u < num_nodes_ && v < num_nodes_,
             "Graph::add_edge: endpoint out of range");
  edges_.push_back(Edge{u, v});
}

NodeId Graph::add_nodes(NodeId count) {
  const NodeId first = num_nodes_;
  num_nodes_ += count;
  return first;
}

std::vector<Degree> Graph::degrees() const {
  std::vector<Degree> deg(num_nodes_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

Graph Graph::simplified() const {
  std::vector<Edge> canon;
  canon.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;  // drop self-loops
    canon.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  });
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  return Graph(num_nodes_, std::move(canon));
}

Graph::Adjacency Graph::adjacency() const {
  Adjacency adj;
  adj.offsets.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) {
    ++adj.offsets[e.u + 1];
    ++adj.offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < adj.offsets.size(); ++i) {
    adj.offsets[i] += adj.offsets[i - 1];
  }
  adj.neighbors.resize(adj.offsets.back());
  std::vector<std::size_t> cursor(adj.offsets.begin(),
                                  adj.offsets.end() - 1);
  for (const Edge& e : edges_) {
    adj.neighbors[cursor[e.u]++] = e.v;
    adj.neighbors[cursor[e.v]++] = e.u;
  }
  return adj;
}

NodeId Graph::append_disjoint(const Graph& other) {
  const NodeId offset = num_nodes_;
  num_nodes_ += other.num_nodes_;
  edges_.reserve(edges_.size() + other.edges_.size());
  for (const Edge& e : other.edges_) {
    edges_.push_back(Edge{e.u + offset, e.v + offset});
  }
  return offset;
}

}  // namespace palu::graph
