// Canonical metric names for the instrumented layers.
//
// Every series palu emits is declared here once, so exporters, tests, and
// dashboards agree on spelling, and the fast-vs-legacy equivalence suite
// can enumerate exactly which families exist.  Conventions follow the
// Prometheus guidance: `palu_` prefix, `_total` suffix on counters, unit
// suffix (`_ns`) on duration histograms, labels for low-cardinality
// dimensions only (reader, stage, path, outcome).
#pragma once

namespace palu::obs {

class Registry;

namespace names {

// --- ingest (src/io) ---------------------------------------------------
/// Counter{reader}: calls into a policy-aware reader.
inline constexpr char kIngestReads[] = "palu_ingest_reads_total";
/// Counter{reader, outcome=kept|repaired|dropped}: per-line dispositions.
inline constexpr char kIngestLines[] = "palu_ingest_lines_total";
/// Counter{reader}: reads aborted because max_bad_lines was exhausted.
inline constexpr char kIngestBudgetExhausted[] =
    "palu_ingest_budget_exhausted_total";

// --- window sweeps (src/traffic) ---------------------------------------
/// Counter: sweep_windows invocations.
inline constexpr char kSweepRuns[] = "palu_sweep_runs_total";
/// Counter{outcome=completed|failed|skipped}: per-window dispositions.
inline constexpr char kSweepWindows[] = "palu_sweep_windows_total";
/// Counter: sweeps that observed their cancel flag.
inline constexpr char kSweepCancelled[] = "palu_sweep_cancelled_total";
/// Counter: sweeps that hit their wall-clock deadline.
inline constexpr char kSweepDeadlineExpired[] =
    "palu_sweep_deadline_expired_total";
/// Counter: window failures caused by an armed failpoint.
inline constexpr char kSweepFailpointTrips[] =
    "palu_sweep_failpoint_trips_total";
/// Gauge: worker count of the pool driving the most recent sweep.
inline constexpr char kSweepPoolThreads[] = "palu_sweep_pool_threads";
/// Gauge: sub-accumulators per window of the most recent sweep (1 =
/// concurrent-windows mode, K = intra-window sharding).
inline constexpr char kSweepShardsPerWindow[] =
    "palu_sweep_shards_per_window";
/// Counter: intra-window shard merges performed (K−1 per sharded window).
inline constexpr char kSweepShardsMerged[] =
    "palu_sweep_shards_merged_total";
/// Histogram{stage=sampling|accumulation|binning, path=fast|legacy|counts}:
/// per-worker CPU ns spent in each stage (one observation per worker).
inline constexpr char kSweepStageDurationNs[] =
    "palu_sweep_stage_duration_ns";
/// Histogram: end-to-end wall ns per sweep_windows call.
inline constexpr char kSweepDurationNs[] = "palu_sweep_duration_ns";

// --- fit ladder (src/fit, src/core) ------------------------------------
/// Counter{stage=levmar|nelder-mead|moments}: optimizer attempts.
inline constexpr char kFitStageAttempts[] = "palu_fit_stage_attempts_total";
/// Counter{stage}: attempts that produced an accepted stage result.
inline constexpr char kFitStageSuccess[] = "palu_fit_stage_success_total";
/// Histogram{stage}: iterations consumed by each attempt.
inline constexpr char kFitStageIterations[] = "palu_fit_stage_iterations";
/// Counter{stage=levmar|nelder-mead|moments|failed}: which rung of the
/// ladder each robust_fit_palu call ultimately returned from.
inline constexpr char kFitResults[] = "palu_fit_results_total";
/// Counter: base-fit retries inside robust_fit_palu's tail relaxation.
inline constexpr char kFitBaseRetries[] = "palu_fit_base_retries_total";

// --- columnar window store (src/store) ----------------------------------
/// Counter: window blocks appended by capture writers.
inline constexpr char kStoreBlocksWritten[] =
    "palu_store_blocks_written_total";
/// Counter: bytes written by capture writers (headers + payloads +
/// manifest/trailer).
inline constexpr char kStoreBytesWritten[] =
    "palu_store_bytes_written_total";
/// Counter: window blocks read and decoded by replay readers.
inline constexpr char kStoreBlocksRead[] = "palu_store_blocks_read_total";
/// Counter: bytes read by replay readers.
inline constexpr char kStoreBytesRead[] = "palu_store_bytes_read_total";
/// Counter: blocks or manifests rejected for a bad magic, size, or
/// FNV-1a checksum.
inline constexpr char kStoreChecksumFailures[] =
    "palu_store_checksum_failures_total";
/// Counter: store opens that met a torn tail (missing/corrupt manifest).
inline constexpr char kStoreTornTails[] = "palu_store_torn_tails_total";
/// Histogram: per-block varint/delta decode ns on the replay path.
inline constexpr char kStoreDecodeNs[] = "palu_store_decode_ns";

// --- streaming service (src/serve) --------------------------------------
/// Counter: packets admitted into the serve window accumulator.
inline constexpr char kServePackets[] = "palu_serve_packets_total";
/// Counter: window boundaries processed (published result lines).
inline constexpr char kServeWindowsFitted[] =
    "palu_serve_windows_fitted_total";
/// Counter: windows whose tumbling lane degraded to stale parameters.
inline constexpr char kServeWindowsStale[] =
    "palu_serve_windows_stale_total";
/// Counter: windows published from the previous fit after a deadline miss.
inline constexpr char kServeDeadlineMisses[] =
    "palu_serve_fit_deadline_misses_total";
/// Gauge: records currently queued between ingest and fit.
inline constexpr char kServeQueueDepth[] = "palu_serve_queue_depth";
/// Counter{policy=drop-oldest|drop-newest}: records shed by backpressure.
inline constexpr char kServeQueueDropped[] =
    "palu_serve_queue_dropped_total";
/// Counter{stage=ingest|fit}: supervised stage restarts.
inline constexpr char kServeStageRestarts[] =
    "palu_serve_stage_restarts_total";
/// Counter: checkpoints written successfully.
inline constexpr char kServeCheckpointWrites[] =
    "palu_serve_checkpoint_writes_total";
/// Counter: checkpoint writes that failed (service kept running).
inline constexpr char kServeCheckpointFailures[] =
    "palu_serve_checkpoint_failures_total";
/// Gauge: window boundaries since the last successful checkpoint.
inline constexpr char kServeCheckpointAge[] =
    "palu_serve_checkpoint_age_windows";
/// Counter{outcome=ok|failed}: restore attempts at startup.
inline constexpr char kServeRestores[] = "palu_serve_restore_total";
/// Gauge: consecutive windows the tumbling lane has been stale.
inline constexpr char kServeStaleness[] = "palu_serve_staleness_windows";
/// Counter: metrics snapshot files written.
inline constexpr char kServeSnapshotWrites[] =
    "palu_serve_snapshot_writes_total";

}  // namespace names

/// Registers every family above (with help text) so exporters emit a
/// complete, stably-ordered catalogue even for layers that have not run
/// yet.  Idempotent; used by palu_tool --metrics and bench_sweep.
void preregister_palu_metrics(Registry& registry);

}  // namespace palu::obs
