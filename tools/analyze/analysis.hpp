// Shared plumbing for palu_lint's analysis passes: rule identifiers, the
// violation record, suppression markers, and the per-file scan bundle
// every pass consumes.
//
// Suppression model (unchanged syntax from the regex-era linter): a
// comment containing the `palu-lint:` tag followed by `allow(<rule>)`
// suppresses <rule> on its own line and the next one; `allow-file(<rule>)`
// after the tag suppresses <rule> for the whole file.  (This paragraph
// deliberately never spells the full marker in one piece — the linter
// scans its own sources.)
//
// Markers are read exclusively from comment tokens, so a string literal
// containing the marker text cannot create a suppression.  Every marker
// records whether it actually suppressed a diagnostic; the
// stale-suppression pass turns unused markers into violations, keeping
// the suppression inventory an honest map of known exceptions.
#pragma once

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analyze/token.hpp"

namespace palu::analyze {

// Rule identifiers.  Every diagnostic carries one of these, and every one
// of them must both fire and suppress somewhere in tests/lint_fixtures
// (enforced by `palu_lint --selftest`).
inline constexpr const char* kRuleFailpoint = "failpoint-registry";
inline constexpr const char* kRuleTypedError = "typed-error";
inline constexpr const char* kRuleDeterminism = "determinism";
inline constexpr const char* kRulePragmaOnce = "header-pragma-once";
inline constexpr const char* kRuleUsingNamespace = "header-using-namespace";
inline constexpr const char* kRuleIncludeLayering = "include-layering";
inline constexpr const char* kRuleLockGuardedBy = "lock-guarded-by";
inline constexpr const char* kRuleLockDiscipline = "lock-discipline";
inline constexpr const char* kRuleHotPath = "hot-path-registration";
inline constexpr const char* kRuleStaleSuppression = "stale-suppression";

inline constexpr const char* kAllRules[] = {
    kRuleFailpoint,      kRuleTypedError,     kRuleDeterminism,
    kRulePragmaOnce,     kRuleUsingNamespace, kRuleIncludeLayering,
    kRuleLockGuardedBy,  kRuleLockDiscipline, kRuleHotPath,
    kRuleStaleSuppression};

struct Violation {
  std::string file;
  std::size_t line = 0;  ///< 1-based; 0 = whole file
  std::string rule;
  std::string message;
};

/// One allow()/allow-file() occurrence, with usage bookkeeping for the
/// stale-suppression pass.
struct Marker {
  std::string rule;
  std::size_t line = 0;  ///< line the marker text appears on
  bool file_wide = false;
  bool used = false;
};

/// Everything the passes need to know about one file.
struct FileScan {
  std::filesystem::path path;
  bool header = false;
  std::string layer_dir;  ///< include/palu/<d> or src/<d> segment, or ""
  TokenizedFile toks;
  std::vector<Marker> markers;
};

/// Extracts suppression markers from a file's comment tokens.  A marker
/// inside a multi-line block comment is attributed to the physical line
/// its text appears on.
std::vector<Marker> collect_markers(const TokenizedFile& toks);

/// Filters `local` through the file's markers (marking the ones that
/// suppress something as used) and through `config_file_wide` rules
/// (central allowlists such as the timing-file exemption; checked first,
/// so an in-file marker made redundant by the central list stays unused
/// and is reported stale).  Surviving violations are appended to `out`.
void apply_suppressions(FileScan& scan,
                        const std::set<std::string>& config_file_wide,
                        std::vector<Violation> local,
                        std::vector<Violation>* out);

/// The stale-suppression pass: every marker that suppressed nothing is a
/// violation.  A stale marker's diagnostic can itself be suppressed by a
/// *different* marker allowing `stale-suppression` (file-wide or on the
/// same/preceding line); self-suppression is rejected so a lone unused
/// allow(stale-suppression) cannot hide itself.
void check_stale_markers(FileScan& scan, std::vector<Violation>* out);

/// Loader for registry-style config files (failpoints.txt,
/// timing_files.txt): one entry per line, '#' comments, trimmed.
bool load_entries(const std::string& path, std::set<std::string>* out);

/// True when `path` ends with allowlist entry `suffix` on a '/' boundary.
bool path_matches_suffix(const std::filesystem::path& path,
                         const std::string& suffix);

}  // namespace palu::analyze
