file(REMOVE_RECURSE
  "libpalu_io.a"
)
