file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_quantities.dir/bench_fig1_quantities.cpp.o"
  "CMakeFiles/bench_fig1_quantities.dir/bench_fig1_quantities.cpp.o.d"
  "bench_fig1_quantities"
  "bench_fig1_quantities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_quantities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
