// Theory-consistency grid: the exact binomial-thinning forms must be
// internally consistent and bound the paper's approximations across the
// whole parameter domain, not just the defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "palu/core/params.hpp"
#include "palu/core/theory.hpp"
#include "palu/math/zeta.hpp"

namespace palu::core {
namespace {

using GridParam = std::tuple<double, double, double, double>;
// (lambda, core fraction, alpha, window)

class TheoryGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  PaluParams params() const {
    const auto [lambda, core_frac, alpha, window] = GetParam();
    return PaluParams::solve_hubs(lambda, core_frac, 0.15, alpha, window);
  }
  static constexpr Degree kCoreDmax = 1u << 10;
};

TEST_P(TheoryGrid, ExactCompositionIsADistribution) {
  const auto comp = observed_composition_exact(params(), kCoreDmax);
  EXPECT_GT(comp.visible_mass, 0.0);
  EXPECT_GE(comp.core_share, 0.0);
  EXPECT_GE(comp.leaf_share, 0.0);
  EXPECT_GE(comp.unattached_share, 0.0);
  EXPECT_NEAR(comp.core_share + comp.leaf_share + comp.unattached_share,
              1.0, 1e-12);
  EXPECT_LE(comp.unattached_link_share,
            comp.unattached_share + 1e-15);
}

TEST_P(TheoryGrid, ExactDegreeSharesSumToOne) {
  const auto p = params();
  double total = 0.0;
  double last = 1.0;
  Degree d = 1;
  for (; d <= kCoreDmax; ++d) {
    last = degree_share_exact(p, d, kCoreDmax);
    total += last;
    if (d > 32 && last < 1e-10) break;
  }
  // Close the power-law remainder analytically: share ≈ A·d^{−α} with A
  // recovered from the last evaluated point.
  if (d < kCoreDmax) {
    const double amp =
        last * std::pow(static_cast<double>(d), p.alpha);
    total += amp * (math::truncated_zeta(p.alpha, kCoreDmax) -
                    math::truncated_zeta(p.alpha, d));
  }
  EXPECT_NEAR(total, 1.0, 5e-3);
}

TEST_P(TheoryGrid, ExactVisibleMassIsMonotoneInWindow) {
  const auto base = params();
  double prev = 0.0;
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double v = visible_mass_exact(base.at_window(p), kCoreDmax);
    EXPECT_GT(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST_P(TheoryGrid, PaperGapFollowsTheJacobianFactor) {
  // The paper writes the thinned core amplitude as C·p^α/ζ(α); the
  // Jacobian-correct amplitude of Bin(D, p) thinning is C·p^{α−1}/ζ(α)
  // (count(d) ≈ pmf_D(d/p)/p).  So at power-law-dominated degrees the
  // paper's *mass* under-counts by exactly a factor p — a systematic,
  // window-dependent error the exact forms repair.
  const auto p = params();
  const double v_exact = visible_mass_exact(p, kCoreDmax);
  const double v_paper = observed_composition(p).visible_mass;
  EXPECT_GT(v_paper / v_exact, 0.4);
  EXPECT_LT(v_paper / v_exact, 1.6);
  // Pick a degree where the core term dominates the star bump but finite
  // truncation has not kicked in.
  const Degree probe = 16;
  const double exact =
      degree_share_exact(p, probe, kCoreDmax) * v_exact;
  const double paper = degree_share(p, probe) * v_paper;
  EXPECT_NEAR(paper / exact, p.window, 0.5 * p.window + 0.05)
      << "the gap should track the window parameter";
  // At d = 1 the leaf/star terms (which the paper states exactly)
  // dominate, so the gap there stays O(1).
  const double exact1 = degree_share_exact(p, 1, kCoreDmax) * v_exact;
  const double paper1 = degree_share(p, 1) * v_paper;
  EXPECT_GT(paper1 / exact1, 0.4);
  EXPECT_LT(paper1 / exact1, 2.5);
}

TEST_P(TheoryGrid, PooledExactMatchesPointwiseSums) {
  const auto p = params();
  const auto pooled = pooled_theory_exact(p, 6, kCoreDmax);
  for (std::uint32_t i = 0; i < 6; ++i) {
    double direct = 0.0;
    const Degree lo = i == 0 ? 1 : (Degree{1} << (i - 1)) + 1;
    const Degree hi = Degree{1} << i;
    for (Degree d = lo; d <= hi; ++d) {
      direct += degree_share_exact(p, d, kCoreDmax);
    }
    EXPECT_NEAR(pooled[i], direct, 1e-10) << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoryGrid,
    ::testing::Combine(::testing::Values(1.0, 8.0),
                       ::testing::Values(0.2, 0.6),
                       ::testing::Values(1.6, 2.4, 3.0),
                       ::testing::Values(0.2, 0.8)));

}  // namespace
}  // namespace palu::core
