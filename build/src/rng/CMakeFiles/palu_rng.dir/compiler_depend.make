# Empty compiler generated dependencies file for palu_rng.
# This may be replaced when dependencies are built.
