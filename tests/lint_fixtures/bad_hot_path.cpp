// Fixture: Registry name-lookups inside loop bodies — both the
// obs::names:: constant form and the string-literal form, in braced and
// brace-less loop statements.
// palu-lint-expect: hot-path-registration
#include <vector>

#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"

void pump(palu::obs::Registry& registry, const std::vector<int>& xs) {
  for (int x : xs) {
    registry.counter(palu::obs::names::kSweepRuns).inc();
    (void)x;
  }
  int n = 3;
  while (n > 0)
    registry.histogram("palu_window_packets_fixture").observe(n--);
}
