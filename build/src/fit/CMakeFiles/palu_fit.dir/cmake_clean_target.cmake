file(REMOVE_RECURSE
  "libpalu_fit.a"
)
