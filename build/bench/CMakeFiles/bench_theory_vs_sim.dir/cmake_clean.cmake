file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_vs_sim.dir/bench_theory_vs_sim.cpp.o"
  "CMakeFiles/bench_theory_vs_sim.dir/bench_theory_vs_sim.cpp.o.d"
  "bench_theory_vs_sim"
  "bench_theory_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
