// Unit tests for palu::obs — the metrics registry (counters, gauges,
// log2-bucket histograms), RAII trace spans, both exporters, and the
// Prometheus exposition-format validator the ctest round-trip relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/obs/export.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/obs/span.hpp"

namespace palu::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketIndexMirrorsLogBinnedLayout) {
  // Bucket 0 holds v <= 1; bucket i holds (2^{i-1}, 2^i]; top saturates.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(5), 3u);
  const std::uint64_t top = std::uint64_t{1} << 63;
  EXPECT_EQ(Histogram::bucket_index(top - 1), 63u);
  EXPECT_EQ(Histogram::bucket_index(top), 63u);
  EXPECT_EQ(Histogram::bucket_index(top + 1), 63u);  // saturating
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 63u);
  EXPECT_EQ(Histogram::bucket_upper(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper(5), 32u);
  EXPECT_EQ(Histogram::bucket_upper(63), top);
}

TEST(Histogram, ObserveUpdatesCountSumAndBuckets) {
  Histogram h;
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(10), 1u);  // 1000 in (512, 1024]
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(Registry, FindOrCreateReturnsStableIdentity) {
  Registry r;
  Counter& a = r.counter("palu_test_total", {{"k", "v"}});
  Counter& b = r.counter("palu_test_total", {{"k", "v"}});
  Counter& other = r.counter("palu_test_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
  EXPECT_EQ(r.num_series(), 2u);
}

TEST(Registry, RejectsInvalidNamesAndKindConflicts) {
  Registry r;
  EXPECT_THROW(r.counter("1starts_with_digit"), InvalidArgument);
  EXPECT_THROW(r.counter("has space"), InvalidArgument);
  EXPECT_THROW(r.counter("palu_ok_total", {{"0bad", "v"}}),
               InvalidArgument);
  r.counter("palu_dual_total");
  EXPECT_THROW(r.gauge("palu_dual_total"), InvalidArgument);
  EXPECT_THROW(r.histogram("palu_dual_total"), InvalidArgument);
  // Grammar allows colons in metric names but not label keys.
  EXPECT_NO_THROW(r.counter("palu:colon:ok"));
  EXPECT_TRUE(valid_metric_name("palu:colon:ok"));
  EXPECT_FALSE(valid_label_name("palu:colon:ok"));
}

TEST(Registry, SnapshotIsSortedTrimmedAndEqualityComparable) {
  Registry r;
  r.counter("palu_b_total").inc(2);
  r.counter("palu_a_total").inc(1);
  r.gauge("palu_g").set(-5);
  Histogram& h = r.histogram("palu_h_ns");
  h.observe(3);  // bucket 2 is the last non-empty one

  const RegistrySnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "palu_a_total");
  EXPECT_EQ(snap.counters[1].name, "palu_b_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 3u);  // trimmed after bin 2

  // Identical event streams into a second registry → identical samples.
  Registry r2;
  r2.counter("palu_b_total").inc(2);
  r2.counter("palu_a_total").inc(1);
  const RegistrySnapshot snap2 = r2.snapshot();
  EXPECT_EQ(snap.counters, snap2.counters);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry r;
  Counter& c = r.counter("palu_c_total");
  c.inc(9);
  r.histogram("palu_h_ns").observe(4);
  r.reset_values();
  EXPECT_EQ(r.num_series(), 2u);
  EXPECT_EQ(c.value(), 0u);  // cached reference survives the reset
  EXPECT_EQ(r.snapshot().histograms[0].count, 0u);
}

TEST(TraceSpan, DeliversToAccumulatorOnceAndIdempotently) {
  std::uint64_t acc = 5;
  TraceSpan span(acc);
  const std::uint64_t elapsed = span.stop();
  EXPECT_EQ(acc, 5 + elapsed);
  EXPECT_EQ(span.stop(), 0u);  // repeat stop is a no-op
  EXPECT_EQ(acc, 5 + elapsed);
}

TEST(TraceSpan, DeliversToHistogramOnDestruction) {
  Histogram h;
  { TraceSpan span(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Preregister, CataloguesEveryFamilyIdempotently) {
  Registry r;
  preregister_palu_metrics(r);
  const std::size_t n = r.num_series();
  EXPECT_GT(n, 0u);
  preregister_palu_metrics(r);  // idempotent
  EXPECT_EQ(r.num_series(), n);
  const RegistrySnapshot snap = r.snapshot();
  bool saw_runs = false;
  for (const auto& c : snap.counters) {
    if (c.name == names::kSweepRuns) saw_runs = true;
  }
  EXPECT_TRUE(saw_runs);
  EXPECT_FALSE(snap.help.empty());
  EXPECT_NE(snap.help.find(names::kIngestLines), snap.help.end());
}

TEST(Export, JsonCarriesAllSections) {
  Registry r;
  r.counter("palu_c_total", {{"k", "a\"b"}}).inc(1);
  r.gauge("palu_g").set(-2);
  r.histogram("palu_h_ns").observe(7);
  std::ostringstream os;
  write_json(os, r.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("palu_c_total"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);  // label escaping
  EXPECT_NE(json.find("-2"), std::string::npos);
}

TEST(Export, PrometheusRoundTripsThroughValidator) {
  Registry r;
  preregister_palu_metrics(r);
  r.counter(names::kSweepRuns).inc(3);
  r.gauge(names::kSweepPoolThreads).set(4);
  r.histogram(names::kSweepDurationNs).observe(1234567);
  r.counter("palu_extra_total", {{"why", "quo\"te\\and\nnewline"}}).inc(1);
  std::ostringstream os;
  write_prometheus(os, r.snapshot());
  std::istringstream is(os.str());
  const std::vector<std::string> errors = validate_prometheus(is);
  for (const std::string& e : errors) ADD_FAILURE() << e;
  EXPECT_TRUE(errors.empty());
  EXPECT_NE(os.str().find("# TYPE palu_sweep_runs_total counter"),
            std::string::npos);
  EXPECT_NE(os.str().find("le=\"+Inf\""), std::string::npos);
}

// Each corrupt input carries its # TYPE header so the violation reported
// is the one under test, not the missing-TYPE fallback.
TEST(Export, ValidatorRejectsMalformedExposition) {
  const auto first_error = [](const std::string& text) {
    std::istringstream is(text);
    const std::vector<std::string> errors = validate_prometheus(is);
    return errors.empty() ? std::string{} : errors.front();
  };
  const std::string type_line = "# TYPE palu_h_ns histogram\n";
  EXPECT_NE(first_error(type_line +
                        "palu_h_ns_bucket{le=\"1\"} 5\n"
                        "palu_h_ns_bucket{le=\"2\"} 3\n"
                        "palu_h_ns_bucket{le=\"+Inf\"} 5\n"
                        "palu_h_ns_sum 9\n"
                        "palu_h_ns_count 5\n")
                .find("not cumulative"),
            std::string::npos);
  EXPECT_NE(first_error(type_line +
                        "palu_h_ns_bucket{le=\"1\"} 5\n"
                        "palu_h_ns_sum 9\n"
                        "palu_h_ns_count 5\n")
                .find("missing +Inf"),
            std::string::npos);
  EXPECT_NE(first_error(type_line +
                        "palu_h_ns_bucket{le=\"+Inf\"} 5\n"
                        "palu_h_ns_sum 9\n"
                        "palu_h_ns_count 4\n")
                .find("disagrees"),
            std::string::npos);
  EXPECT_NE(first_error("9bad_name 1\n").find("invalid metric name"),
            std::string::npos);
  EXPECT_NE(first_error("palu_untyped_total 1\n").find("no preceding"),
            std::string::npos);
  // An empty exposition is trivially valid.
  EXPECT_EQ(first_error(""), std::string{});
}

}  // namespace
}  // namespace palu::obs
