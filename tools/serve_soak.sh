#!/bin/sh
# CI soak for `palu_tool serve`: a live pipe plus failpoint churn.
#
# A generator loop feeds serve's stdin for DURATION seconds while the
# PALU_FAILPOINT environment variable arms all three runtime serve
# failpoints (ingest restart, fit degradation, checkpoint failure).
# Pass criteria: the daemon survives the whole soak and drains cleanly
# on SIGTERM (exit 0), the published window indices are strictly
# monotone with no gaps (the windows-fitted counter never goes
# backwards or skips), the final metrics snapshot round-trips through
# the strict Prometheus validator, and the --record window store the
# daemon wrote validates (sealed manifest, checksums, one block per
# fitted window) under strict replay ingest.
#
# Usage: serve_soak.sh /path/to/palu_tool [duration_seconds]
set -eu

TOOL="$1"
DURATION="${2:-30}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TOOL" generate --nodes 3000 --packets 200000 --seed 17 > "$DIR/trace.txt"

# Endless writer: replay the trace until the pipe closes.  The subshell
# dies on SIGPIPE when serve exits.
(
    while :; do cat "$DIR/trace.txt" || exit 0; done
) | PALU_FAILPOINT="serve.ingest:3:5,serve.fit:2:3,serve.checkpoint:2:4" \
    "$TOOL" serve --window 20000 --checkpoint "$DIR/ck.txt" \
        --snapshot "$DIR/snap.json" --snapshot-interval-ms 500 \
        --record "$DIR/record.store" \
        > "$DIR/out.txt" 2> "$DIR/err.txt" &
PID=$!

sleep "$DURATION"

if ! kill -0 "$PID" 2>/dev/null; then
    RC=0
    wait "$PID" || RC=$?
    echo "FAIL: serve died mid-soak (exit $RC)" >&2
    cat "$DIR/err.txt" >&2
    exit 1
fi
kill -TERM "$PID"
j=0
while kill -0 "$PID" 2>/dev/null; do
    j=$((j + 1))
    if [ "$j" -gt 100 ]; then
        echo "FAIL: serve did not drain after the soak" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
RC=0
wait "$PID" || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "FAIL: soak exit code $RC != 0" >&2
    cat "$DIR/err.txt" >&2
    exit 1
fi

WINDOWS=$(grep -c '^window=' "$DIR/out.txt" || true)
if [ "$WINDOWS" -lt 2 ]; then
    echo "FAIL: only $WINDOWS windows fitted during the soak" >&2
    cat "$DIR/err.txt" >&2
    exit 1
fi
# Window indices must be strictly monotone with no gaps: 0, 1, 2, ...
sed -n 's/^window=\([0-9]*\) .*/\1/p' "$DIR/out.txt" |
    awk 'NR != $1 + 1 { print "gap at line " NR ": index " $1; bad = 1 }
         END { exit bad }' || {
    echo "FAIL: windows-fitted sequence is not monotone" >&2
    exit 1
}

[ -s "$DIR/snap.json" ] || { echo "FAIL: snapshot missing" >&2; exit 1; }
"$TOOL" check-metrics --prom "$DIR/snap.prom"

# The recorded store must be sealed and readable under strict ingest:
# serve's drain finishes the writer, so a torn tail here means the
# recorder broke the shutdown contract.
"$TOOL" replay --store "$DIR/record.store" --verify || {
    echo "FAIL: recorded window store does not validate" >&2
    exit 1
}
STORED=$("$TOOL" replay --store "$DIR/record.store" --verify |
    sed -n 's/.*OK (\([0-9]*\) windows.*/\1/p')
if [ "$STORED" != "$WINDOWS" ]; then
    echo "FAIL: store has $STORED windows, daemon fitted $WINDOWS" >&2
    exit 1
fi

echo "serve soak: OK ($WINDOWS windows over ${DURATION}s, injected" \
     "faults survived, $STORED windows recorded)"
