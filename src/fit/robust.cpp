#include "palu/fit/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "palu/common/error.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::fit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Folds a finished stage's diagnostic into the fit-ladder metrics.
void record_stage(obs::Registry& registry, const StageDiagnostic& diag) {
  const obs::Labels labels = {
      {"stage", std::string(to_string(diag.stage))}};
  registry.counter(obs::names::kFitStageAttempts, labels)
      .inc(static_cast<std::uint64_t>(diag.attempts));
  if (diag.succeeded) {
    registry.counter(obs::names::kFitStageSuccess, labels).inc();
  }
  registry.histogram(obs::names::kFitStageIterations, labels)
      .observe(static_cast<std::uint64_t>(std::max(diag.iterations, 0)));
}

bool all_finite(const std::vector<double>& x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Σ r²(x); +inf when the residual function rejects x.
double guarded_objective(
    const std::function<std::vector<double>(const std::vector<double>&)>&
        residuals,
    const std::vector<double>& x) {
  try {
    const auto r = residuals(x);
    double acc = 0.0;
    for (const double v : r) acc += v * v;
    return std::isfinite(acc) ? acc : kInf;
  } catch (const Error&) {
    return kInf;
  }
}

/// x0 perturbed by ±jitter relative noise, deterministic per attempt.
std::vector<double> jittered_start(const std::vector<double>& x0,
                                   double jitter, const Rng& base,
                                   int attempt) {
  if (attempt == 0) return x0;
  Rng rng = base.fork(static_cast<std::uint64_t>(attempt));
  std::vector<double> x = x0;
  for (double& v : x) {
    const double scale = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    v = v * scale;
    // A zero coordinate cannot be scaled out of place; nudge it instead.
    if (v == 0.0) v = jitter * (2.0 * rng.uniform() - 1.0);
  }
  return x;
}

}  // namespace

std::string_view to_string(RobustStage stage) noexcept {
  switch (stage) {
    case RobustStage::kLevMar: return "levmar";
    case RobustStage::kNelderMead: return "nelder-mead";
    case RobustStage::kMoments: return "moments";
    case RobustStage::kFailed: return "failed";
  }
  return "unknown";
}

RobustFitResult robust_least_squares(
    const std::function<std::vector<double>(const std::vector<double>&)>&
        residuals,
    std::vector<double> x0,
    const std::function<std::vector<double>()>& fallback,
    const RobustFitOptions& opts) {
  PALU_CHECK(opts.max_attempts_per_stage >= 1,
             "robust_least_squares: need at least one attempt per stage");
  RobustFitResult out;
  obs::Registry& registry = opts.metrics != nullptr
                                ? *opts.metrics
                                : obs::default_registry();
  const Rng base(opts.seed);

  // --- stage 1: Levenberg–Marquardt.
  {
    StageDiagnostic diag;
    diag.stage = RobustStage::kLevMar;
    diag.objective = kInf;
    for (int attempt = 0; attempt < opts.max_attempts_per_stage;
         ++attempt) {
      ++diag.attempts;
      try {
        const auto start = jittered_start(x0, opts.jitter, base, attempt);
        const LevMarResult lm =
            levenberg_marquardt(residuals, start, opts.levmar);
        diag.iterations = lm.iterations;
        if (lm.converged && all_finite(lm.x) &&
            std::isfinite(lm.chi_squared)) {
          diag.succeeded = true;
          diag.objective = lm.chi_squared;
          diag.error.clear();
          out.x = lm.x;
          out.objective = lm.chi_squared;
          out.stage = RobustStage::kLevMar;
          break;
        }
        diag.error = "did not converge in " +
                     std::to_string(lm.iterations) + " iterations";
      } catch (const Error& e) {
        diag.error = e.what();
      }
    }
    record_stage(registry, diag);
    out.diagnostics.push_back(std::move(diag));
    if (out.ok()) return out;
  }

  // --- stage 2: Nelder–Mead on the same objective.
  {
    StageDiagnostic diag;
    diag.stage = RobustStage::kNelderMead;
    diag.objective = kInf;
    const auto objective = [&](const std::vector<double>& x) {
      return guarded_objective(residuals, x);
    };
    for (int attempt = 0; attempt < opts.max_attempts_per_stage;
         ++attempt) {
      ++diag.attempts;
      try {
        const auto start =
            jittered_start(x0, opts.jitter, base.fork(0x4e4d), attempt);
        const NelderMeadResult nm =
            nelder_mead(objective, start, opts.nelder_mead);
        diag.iterations = nm.iterations;
        if (nm.converged && all_finite(nm.x) && std::isfinite(nm.value)) {
          diag.succeeded = true;
          diag.objective = nm.value;
          diag.error.clear();
          out.x = nm.x;
          out.objective = nm.value;
          out.stage = RobustStage::kNelderMead;
          break;
        }
        diag.error = "did not converge in " +
                     std::to_string(nm.iterations) + " iterations";
      } catch (const Error& e) {
        diag.error = e.what();
      }
    }
    record_stage(registry, diag);
    out.diagnostics.push_back(std::move(diag));
    if (out.ok()) return out;
  }

  // --- stage 3: closed-form fallback.
  {
    StageDiagnostic diag;
    diag.stage = RobustStage::kMoments;
    diag.attempts = 1;
    diag.objective = kInf;
    if (!fallback) {
      diag.error = "no fallback provided";
    } else {
      try {
        std::vector<double> x = fallback();
        if (all_finite(x)) {
          diag.succeeded = true;
          diag.objective = guarded_objective(residuals, x);
          out.x = std::move(x);
          out.objective = diag.objective;
          out.stage = RobustStage::kMoments;
        } else {
          diag.error = "fallback produced non-finite parameters";
        }
      } catch (const Error& e) {
        diag.error = e.what();
      }
    }
    record_stage(registry, diag);
    out.diagnostics.push_back(std::move(diag));
  }
  return out;
}

}  // namespace palu::fit
