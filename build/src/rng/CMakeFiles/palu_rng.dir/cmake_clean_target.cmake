file(REMOVE_RECURSE
  "libpalu_rng.a"
)
