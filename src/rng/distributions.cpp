#include "palu/rng/distributions.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/math/gamma.hpp"

namespace palu::rng {
namespace {

// Poisson by multiplicative inversion; expected iterations = λ.
std::uint64_t poisson_inversion(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double prod = 1.0;
  std::uint64_t k = 0;
  for (;;) {
    prod *= rng.uniform_positive();
    if (prod <= limit) return k;
    ++k;
  }
}

// Hörmann's PTRS transformed-rejection Poisson sampler; exact for λ >= 10.
// W. Hörmann, "The transformed rejection method for generating Poisson
// random variables", Insurance: Mathematics and Economics 12 (1993).
std::uint64_t poisson_ptrs(Rng& rng, double lambda) {
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_lambda = std::log(lambda);
  for (;;) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform_positive();
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (kf < 0.0) continue;
    const auto k = static_cast<std::uint64_t>(kf);
    if (us >= 0.07 && v <= v_r) return k;
    if (us < 0.013 && v > us) continue;
    const double lhs = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs =
        kf * log_lambda - lambda - math::log_factorial(k);
    if (lhs <= rhs) return k;
  }
}

// Binomial(n, p) by single-uniform CDF inversion with the multiplicative
// pmf recurrence
//   pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p):
// one mul/div per step after a single exp setup, vs. one log per success
// for the waiting-time form.  Caller passes log1p(-p) and p/(1−p) so a
// fixed-p hot loop (the sequential multinomial split) precomputes them
// once per category.  Requires p <= 0.5 and n·p < 10; that bounds the
// setup (1−p)^n ≥ e^{−20}, so no underflow at k = 0.
// Reciprocals of the step divisor k + 1: in the n·p < 10 regime the walk
// serves, k almost never reaches kWalkInv, and a table-load multiply is
// off the loop-carried pmf dependency chain where the divide was on it.
constexpr std::size_t kWalkInv = 64;
constexpr std::array<double, kWalkInv> kWalkInvTable = [] {
  std::array<double, kWalkInv> table{};
  for (std::size_t i = 1; i < kWalkInv; ++i) {
    table[i] = 1.0 / static_cast<double>(i);
  }
  return table;
}();

std::uint64_t binomial_cdf_walk(Rng& rng, std::uint64_t n, double log1m_p,
                                double ratio) {
  double pmf = std::exp(static_cast<double>(n) * log1m_p);
  double cdf = pmf;
  const double u = rng.uniform();
  std::uint64_t k = 0;
  while (u > cdf && k < n) {
    const double inv = k + 1 < kWalkInv
                           ? kWalkInvTable[k + 1]
                           : 1.0 / static_cast<double>(k + 1);
    pmf *= ratio * static_cast<double>(n - k) * inv;
    cdf += pmf;
    ++k;
    // Deep-tail underflow: u sits beyond the representable mass, so the
    // walk can never catch up — stop at the last representable value.
    if (pmf == 0.0) break;
  }
  return k;
}

// Binomial by waiting-time inversion; expected iterations = n·p + 1.
std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  const double log_q = std::log1p(-p);
  std::uint64_t count = 0;
  double x = 0.0;
  for (;;) {
    // Skip a Geometric(p)-distributed run of failures.
    x += std::floor(std::log(rng.uniform_positive()) / log_q) + 1.0;
    if (x > static_cast<double>(n)) return count;
    ++count;
  }
}

// ln(n!) with a Stirling tail past the shared table: two correction terms
// leave the error far below the Lanczos kernel's own ~1e-13, at a third
// of its cost (one log instead of three, no coefficient divisions).
// Counts-path only — the legacy samplers keep math::log_factorial so
// their accept/reject arithmetic stays bit-stable under the goldens.
double log_factorial_fast(std::uint64_t n) {
  if (n <= 1024) return math::log_factorial(n);
  const double x = static_cast<double>(n) + 1.0;
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  return (x - 0.5) * std::log(x) - x +
         0.91893853320467274178 +  // 0.5·ln(2π)
         inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0));
}

// Hörmann's BTRS transformed-rejection binomial sampler; exact for
// n·p ≥ 10, p ≤ 0.5.  `lpq` is log(p / (1 − p)), passed in so fixed-p
// hot loops (the sequential multinomial split) can precompute it.
// kFastTail selects the Stirling ln(n!) for the rejection test; keep it
// off anywhere byte-pinned to the legacy RNG stream.
template <bool kFastTail>
std::uint64_t binomial_btrs_prepared(Rng& rng, std::uint64_t n, double p,
                                     double lpq) {
  const double nd = static_cast<double>(n);
  const double spq = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1.0) * p);
  // h needs two log_factorials (log_gamma for n beyond the table) but is
  // only read when the squeeze test fails (~15% of draws), so compute it
  // lazily: same value, same RNG consumption, identical results.
  double h = 0.0;
  bool h_ready = false;
  for (;;) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform_positive();
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + c);
    if (kf < 0.0 || kf > nd) continue;
    const auto k = static_cast<std::uint64_t>(kf);
    if (us >= 0.07 && v <= v_r) return k;
    if (!h_ready) {
      h = kFastTail
              ? log_factorial_fast(static_cast<std::uint64_t>(m)) +
                    log_factorial_fast(n - static_cast<std::uint64_t>(m))
              : math::log_factorial(static_cast<std::uint64_t>(m)) +
                    math::log_factorial(n - static_cast<std::uint64_t>(m));
      h_ready = true;
    }
    const double lhs = std::log(v * alpha / (a / (us * us) + b));
    const double rhs =
        kFastTail ? h - log_factorial_fast(k) - log_factorial_fast(n - k) +
                        (kf - m) * lpq
                  : h - math::log_factorial(k) -
                        math::log_factorial(n - k) + (kf - m) * lpq;
    if (lhs <= rhs) return k;
  }
}

std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p) {
  return binomial_btrs_prepared<false>(rng, n, p,
                                       std::log(p / (1.0 - p)));
}

}  // namespace

std::uint64_t sample_poisson(Rng& rng, double lambda) {
  PALU_CHECK(lambda >= 0.0, "sample_poisson: requires lambda >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 10.0) return poisson_inversion(rng, lambda);
  return poisson_ptrs(rng, lambda);
}

std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0, "sample_binomial: requires 0 <= p <= 1");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  const double nq = static_cast<double>(n) * q;
  const std::uint64_t k =
      nq < 10.0 ? binomial_inversion(rng, n, q) : binomial_btrs(rng, n, q);
  return flipped ? n - k : k;
}

std::uint64_t sample_binomial_small(Rng& rng, std::uint64_t n, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0,
             "sample_binomial_small: requires 0 <= p <= 1");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  if (static_cast<double>(n) * q >= 10.0) {
    const std::uint64_t k = binomial_btrs_prepared<true>(
        rng, n, q, std::log(q / (1.0 - q)));
    return flipped ? n - k : k;
  }
  const std::uint64_t k =
      binomial_cdf_walk(rng, n, std::log1p(-q), q / (1.0 - q));
  return flipped ? n - k : k;
}

std::uint64_t sample_geometric(Rng& rng, double q) {
  PALU_CHECK(q > 0.0 && q <= 1.0, "sample_geometric: requires 0 < q <= 1");
  if (q == 1.0) return 1;
  const double u = rng.uniform_positive();
  return 1 + static_cast<std::uint64_t>(
                 std::floor(std::log(u) / std::log1p(-q)));
}

BoundedZipfSampler::BoundedZipfSampler(double alpha, std::uint64_t dmax)
    : BoundedZipfSampler(alpha, 1, dmax) {}

BoundedZipfSampler::BoundedZipfSampler(double alpha, std::uint64_t dmin,
                                       std::uint64_t dmax)
    : alpha_(alpha), dmin_(dmin), dmax_(dmax) {
  PALU_CHECK(alpha > 0.0, "BoundedZipfSampler: requires alpha > 0");
  PALU_CHECK(dmin >= 1 && dmin <= dmax,
             "BoundedZipfSampler: requires 1 <= dmin <= dmax");
  const double lo = static_cast<double>(dmin);
  steep_ = alpha >= 8.0;
  if (steep_) {
    double total = 0.0;
    std::uint64_t d = dmin;
    for (; d <= dmax && d < dmin + 4096; ++d) {
      const double term = std::pow(static_cast<double>(d), -alpha);
      total += term;
      if (term < total * 1e-18) break;
    }
    total_mass_ = total;
    return;
  }
  h_integral_lo_ = h_integral(lo + 0.5) - h(lo);
  h_integral_hi_ = h_integral(static_cast<double>(dmax) + 0.5);
  s_ = (lo + 1.0) -
       h_integral_inverse(h_integral(lo + 1.5) - h(lo + 1.0));
}

std::uint64_t BoundedZipfSampler::sample_steep(Rng& rng) const {
  if (total_mass_ <= 0.0) return dmin_;  // mass underflowed: δ at dmin
  const double target = rng.uniform() * total_mass_;
  double acc = 0.0;
  for (std::uint64_t d = dmin_; d <= dmax_; ++d) {
    acc += std::pow(static_cast<double>(d), -alpha_);
    if (acc >= target) return d;
  }
  return dmax_;
}

double BoundedZipfSampler::h(double x) const { return std::pow(x, -alpha_); }

double BoundedZipfSampler::h_integral(double x) const {
  // ∫ x^{-α} dx; the α == 1 limit is log.
  const double log_x = std::log(x);
  if (std::abs(alpha_ - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha_) * log_x) / (1.0 - alpha_);
}

double BoundedZipfSampler::h_integral_inverse(double y) const {
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(y);
  double t = y * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard rounding below the pole
  return std::exp(std::log1p(t) / (1.0 - alpha_));
}

std::uint64_t BoundedZipfSampler::operator()(Rng& rng) const {
  if (dmin_ == dmax_) return dmin_;
  if (steep_) return sample_steep(rng);
  for (;;) {
    const double u =
        h_integral_hi_ + rng.uniform() * (h_integral_lo_ - h_integral_hi_);
    const double x = h_integral_inverse(u);
    double kf = std::floor(x + 0.5);
    kf = std::clamp(kf, static_cast<double>(dmin_),
                    static_cast<double>(dmax_));
    const auto k = static_cast<std::uint64_t>(kf);
    if (kf - x <= s_ || u >= h_integral(kf + 0.5) - h(kf)) {
      return k;
    }
  }
}

MultinomialSampler::MultinomialSampler(const std::vector<double>& weights) {
  PALU_CHECK(!weights.empty(), "MultinomialSampler: empty weight vector");
  PALU_CHECK(weights.size() < (std::uint64_t{1} << 32),
             "MultinomialSampler: too many categories");
  categories_ = weights.size();
  std::size_t cap = 1;
  while (cap < categories_) cap <<= 1;
  leaf_base_ = cap;
  tree_.assign(2 * cap, 0.0);
  for (std::size_t i = 0; i < categories_; ++i) {
    PALU_CHECK(weights[i] >= 0.0 && std::isfinite(weights[i]),
               "MultinomialSampler: weights must be finite and "
               "non-negative");
    tree_[leaf_base_ + i] = weights[i];
  }
  // Bottom-up build doubles as pairwise summation: tree_[1] is a far more
  // accurate total than a naive left-to-right accumulation over a
  // heavy-tailed weight vector.
  for (std::size_t i = cap - 1; i >= 1; --i) {
    tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
  }
  PALU_CHECK(tree_[1] > 0.0, "MultinomialSampler: weights sum to zero");
  // Dense-regime split constants from compensated (Neumaier) suffix sums,
  // so heavy-tailed weights keep their conditional probabilities accurate
  // all the way down the vector.  The last non-zero category gets p = 1:
  // it absorbs whatever remains, which conserves mass exactly even under
  // suffix-sum rounding.
  split_p_.assign(categories_, 0.0);
  split_log1m_.assign(categories_, 0.0);
  split_ratio_.assign(categories_, 0.0);
  split_lpq_.assign(categories_, 0.0);
  double sum = 0.0;
  double compensation = 0.0;
  bool nonzero_seen = false;
  for (std::size_t i = categories_; i-- > 0;) {
    const double w = tree_[leaf_base_ + i];
    if (w <= 0.0) continue;
    if (!nonzero_seen) {
      nonzero_seen = true;
      last_nonzero_ = i;
      split_p_[i] = 1.0;
      sum = w;
      continue;
    }
    const double t = sum + w;
    if (std::abs(sum) >= std::abs(w)) {
      compensation += (sum - t) + w;
    } else {
      compensation += (w - t) + sum;
    }
    sum = t;
    const double p = std::min(1.0, w / (sum + compensation));
    split_p_[i] = p;
    if (p < 1.0) {
      split_log1m_[i] = std::log1p(-p);
      split_ratio_[i] = p / (1.0 - p);
      split_lpq_[i] = std::log(split_ratio_[i]);
    }
  }
}

void MultinomialSampler::descend(Rng& rng, std::size_t node,
                                 std::uint64_t n,
                                 std::span<std::uint64_t> counts) const {
  for (;;) {
    if (n == 0) return;  // prune: the whole subtree stays at zero
    if (node >= leaf_base_) {
      counts[node - leaf_base_] = n;
      return;
    }
    if (n == 1) {
      // One remaining trial: a categorical draw by cumulative-sum descent
      // is one uniform instead of one binomial per remaining level.
      double target = rng.uniform() * tree_[node];
      while (node < leaf_base_) {
        const double left = tree_[2 * node];
        if (target < left) {
          node = 2 * node;
        } else {
          target -= left;
          node = 2 * node + 1;
        }
      }
      counts[node - leaf_base_] = 1;
      return;
    }
    const double left = tree_[2 * node];
    const double right = tree_[2 * node + 1];
    if (right == 0.0) {  // includes the power-of-two padding subtrees
      node = 2 * node;
      continue;
    }
    if (left == 0.0) {
      node = 2 * node + 1;
      continue;
    }
    // tree_[node] was built as left + right, so the ratio is a valid
    // probability (≤ 1) by IEEE semantics.
    const std::uint64_t k = sample_binomial(rng, n, left / tree_[node]);
    descend(rng, 2 * node, k, counts);
    node = 2 * node + 1;
    n -= k;
  }
}

void MultinomialSampler::sequential_split(
    Rng& rng, std::uint64_t n, std::span<std::uint64_t> counts) const {
  // Conditional-binomial chain: category c takes
  // Binomial(remaining, w_c / Σ_{j ≥ c} w_j), one linear cache-friendly
  // pass over the precomputed split constants.  Exactly one split per
  // non-zero category regardless of n — the dense-regime counterpart of
  // the pruned tree descent — and the last non-zero category has p = 1,
  // so it absorbs the remainder and mass is conserved exactly.
  std::uint64_t remaining = n;
  for (std::size_t i = 0; i < categories_; ++i) {
    if (remaining == 0) return;  // counts are already zero-filled
    const double p = split_p_[i];
    if (p <= 0.0) continue;  // zero-weight category: always draws 0
    std::uint64_t k;
    if (p >= 1.0) {
      k = remaining;  // last non-zero category absorbs the rest
    } else if (p <= 0.5 &&
               static_cast<double>(remaining) * p < 10.0) {
      // Small-mean common case: the precomputed-constant CDF walk.
      k = binomial_cdf_walk(rng, remaining, split_log1m_[i],
                            split_ratio_[i]);
    } else {
      // Large mean (or p > 0.5): the BTRS kernel, fed the precomputed
      // log(p/(1−p)) so the whole draw is transcendental-free on the
      // squeeze-accept path.  At large n every category lands here, so
      // this per-draw cost is what the N_V-scaling bench measures.
      const bool flipped = p > 0.5;
      const double q = flipped ? 1.0 - p : p;
      const double lpq = flipped ? -split_lpq_[i] : split_lpq_[i];
      std::uint64_t kq;
      if (static_cast<double>(remaining) * q >= 10.0) {
        kq = binomial_btrs_prepared<true>(rng, remaining, q, lpq);
      } else {
        // Rare: a dominant category (p > 0.5) met late, once `remaining`
        // has shrunk below the BTRS regime.
        kq = binomial_cdf_walk(rng, remaining, std::log1p(-q),
                               q / (1.0 - q));
      }
      k = flipped ? remaining - kq : kq;
    }
    counts[i] = k;
    remaining -= k;
  }
}

void MultinomialSampler::operator()(Rng& rng, std::uint64_t n,
                                    std::span<std::uint64_t> counts) const {
  PALU_CHECK(counts.size() == categories_,
             "MultinomialSampler: counts span must have one slot per "
             "category");
  PALU_FAILPOINT("rng.multinomial");
  std::fill(counts.begin(), counts.end(), std::uint64_t{0});
  if (n == 0) return;
  // Crossover: once n is within a small factor of the category count the
  // tree cannot prune enough to beat one cheap split per category.
  if (n >= (categories_ + 3) / 4) {
    sequential_split(rng, n, counts);
    return;
  }
  descend(rng, 1, n, counts);
}

std::vector<std::uint64_t> sample_multinomial(
    Rng& rng, std::uint64_t n, const std::vector<double>& weights) {
  const MultinomialSampler sampler(weights);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  sampler(rng, n, std::span<std::uint64_t>(counts));
  return counts;
}

AliasSampler::AliasSampler(const std::vector<double>& weights,
                           std::uint64_t offset)
    : offset_(offset) {
  PALU_CHECK(!weights.empty(), "AliasSampler: empty weight vector");
  PALU_CHECK(weights.size() < (std::uint64_t{1} << 32),
             "AliasSampler: too many outcomes");
  double total = 0.0;
  for (double w : weights) {
    PALU_CHECK(w >= 0.0 && std::isfinite(w),
               "AliasSampler: weights must be finite and non-negative");
    total += w;
  }
  PALU_CHECK(total > 0.0, "AliasSampler: weights sum to zero");
  const std::size_t n = weights.size();
  prob_.resize(n);
  alias_.assign(n, 0);
  // Scaled probabilities; Vose's stable two-worklist construction.
  std::vector<double> scaled(n);
  std::deque<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.front();
    small.pop_front();
    const std::uint32_t l = large.front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_front();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : small) prob_[i] = 1.0;
  for (std::uint32_t i : large) prob_[i] = 1.0;
}

std::uint64_t AliasSampler::operator()(Rng& rng) const {
  const std::uint64_t i = rng.uniform_index(prob_.size());
  const bool keep = rng.uniform() < prob_[i];
  return offset_ + (keep ? i : alias_[i]);
}

}  // namespace palu::rng
