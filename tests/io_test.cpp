// Unit tests for palu/io: trace round-trips and CSV exports.
#include <gtest/gtest.h>

#include <sstream>

#include "palu/common/error.hpp"
#include "palu/fit/model_zoo.hpp"
#include "palu/io/csv.hpp"
#include "palu/io/trace.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/traffic/sparse_matrix.hpp"

namespace palu::io {
namespace {

TEST(Trace, RoundTripsPackets) {
  const std::vector<traffic::Packet> pkts = {
      {1, 2}, {42, 7}, {18446744073709551615ull, 0}};
  std::stringstream buf;
  write_trace(buf, pkts);
  const auto parsed = read_trace(buf);
  EXPECT_EQ(parsed, pkts);
}

TEST(Trace, SkipsCommentsAndBlanks) {
  std::stringstream buf(
      "# header\n"
      "\n"
      "1 2\n"
      "   # indented comment\n"
      "3\t4\n"
      "  5   6  \r\n");
  const auto parsed = read_trace(buf);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], (traffic::Packet{1, 2}));
  EXPECT_EQ(parsed[1], (traffic::Packet{3, 4}));
  EXPECT_EQ(parsed[2], (traffic::Packet{5, 6}));
}

TEST(Trace, RejectsMalformedLines) {
  const auto expect_bad = [](const char* text) {
    std::stringstream buf(text);
    EXPECT_THROW(read_trace(buf), DataError) << text;
  };
  expect_bad("1\n");
  expect_bad("a b\n");
  expect_bad("1 2 3trailing\n");  // third token glued to second
  expect_bad("-1 2\n");
}

TEST(Trace, AllowsThreeTokenRejection) {
  // "1 2 3" has a stray third token: the dst parse must fail.
  std::stringstream buf("1 2 3\n");
  EXPECT_THROW(read_trace(buf), DataError);
}

TEST(Trace, EmptyInputYieldsEmptyVector) {
  std::stringstream buf("");
  EXPECT_TRUE(read_trace(buf).empty());
}

TEST(Trace, ErrorsNameLineAndOffendingToken) {
  const auto message_for = [](const char* text) -> std::string {
    std::stringstream buf(text);
    try {
      read_trace(buf);
    } catch (const DataError& e) {
      return e.what();
    }
    return {};
  };
  // Negative id: rejected explicitly, not wrapped around to 2^64-1 the
  // way std::stoull would.
  const std::string neg = message_for("# c\n1 2\n-3 4\n");
  EXPECT_NE(neg.find("line 3"), std::string::npos) << neg;
  EXPECT_NE(neg.find("'-3'"), std::string::npos) << neg;
  EXPECT_NE(neg.find("negative"), std::string::npos) << neg;
  // 2^64 overflows uint64 by one.
  const std::string ovf = message_for("18446744073709551616 1\n");
  EXPECT_NE(ovf.find("line 1"), std::string::npos) << ovf;
  EXPECT_NE(ovf.find("overflow"), std::string::npos) << ovf;
  // Junk token.
  const std::string junk = message_for("1 x7\n");
  EXPECT_NE(junk.find("'x7'"), std::string::npos) << junk;
}

TEST(Trace, MaxU64StillParses) {
  std::stringstream buf("18446744073709551615 0\n");
  const auto pkts = read_trace(buf);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_EQ(pkts[0].src, 18446744073709551615ull);
}

TEST(Trace, SkipPolicyDropsAndAccounts) {
  std::stringstream buf("1 2\nbad line\n3 4\n-5 6\n7 8\n");
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  const auto result = read_trace(buf, opts);
  EXPECT_EQ(result.packets,
            (std::vector<traffic::Packet>{{1, 2}, {3, 4}, {7, 8}}));
  EXPECT_EQ(result.report.lines_read, 5u);
  EXPECT_EQ(result.report.records_kept, 3u);
  EXPECT_EQ(result.report.lines_dropped, 2u);
  ASSERT_TRUE(result.report.first_error.has_value());
  EXPECT_EQ(result.report.first_error->line_number, 2u);
}

TEST(Trace, RepairPolicySalvagesGluedTokens) {
  // "17 42 99" (stray third column) and "a 5 b 6" (noise around ids):
  // repair salvages the first two clean u64 runs from each.
  std::stringstream buf("1 2\n17 42 99\na 5 b 6\n???\n");
  IngestOptions opts;
  opts.policy = ErrorPolicy::kRepair;
  const auto result = read_trace(buf, opts);
  EXPECT_EQ(result.packets,
            (std::vector<traffic::Packet>{{1, 2}, {17, 42}, {5, 6}}));
  EXPECT_EQ(result.report.records_kept, 1u);
  EXPECT_EQ(result.report.lines_repaired, 2u);
  EXPECT_EQ(result.report.lines_dropped, 1u);
}

TEST(Csv, HistogramRejectsNegativeCountInsteadOfWrapping) {
  // Regression: "-1" used to pass through std::stoull as 2^64-1.
  std::stringstream buf("d,count\n1,10\n2,-1\n");
  EXPECT_THROW(read_histogram_csv(buf), DataError);
}

TEST(Csv, HistogramRejectsOverflowingTotalsInsteadOfWrapping) {
  // Regression (PR 2): each token fits in a u64, so the row parses, but
  // d · c = 2^80 used to wrap the histogram's weighted total silently.
  const std::string hostile = "d,count\n1099511627776,1099511627776\n";
  std::stringstream strict(hostile);
  EXPECT_THROW(read_histogram_csv(strict), DataError);
  // The repair policy salvages rows, not arithmetic: overflow still
  // aborts the ingest rather than corrupting the accepted histogram.
  std::stringstream repaired(hostile);
  IngestOptions opts;
  opts.policy = ErrorPolicy::kRepair;
  EXPECT_THROW(read_histogram_csv(repaired, opts), DataError);
}

TEST(EdgeList, SkipPolicyDropsOutOfRangeEndpoints) {
  std::stringstream buf("# nodes=3\n0 1\n1 2\n2 9\n");
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  const auto result = read_edge_list(buf, opts);
  EXPECT_EQ(result.graph.num_nodes(), 3u);
  EXPECT_EQ(result.graph.num_edges(), 2u);
  EXPECT_EQ(result.report.lines_dropped, 1u);
  EXPECT_EQ(result.report.records_kept, 2u);
  ASSERT_TRUE(result.report.first_error.has_value());
  EXPECT_EQ(result.report.first_error->line_number, 4u);
}

TEST(Csv, DistributionExport) {
  stats::DegreeHistogram h;
  h.add(1, 3);
  h.add(4, 1);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  std::stringstream buf;
  write_distribution_csv(buf, dist);
  std::string line;
  std::getline(buf, line);
  EXPECT_EQ(line, "d,pmf,cdf");
  std::getline(buf, line);
  EXPECT_EQ(line, "1,0.75,0.75");
  std::getline(buf, line);
  EXPECT_EQ(line, "4,0.25,1");
}

TEST(Csv, PooledExportWithAndWithoutSigma) {
  const stats::LogBinned pooled({0.5, 0.25, 0.25});
  {
    std::stringstream buf;
    write_pooled_csv(buf, pooled);
    std::string line;
    std::getline(buf, line);
    EXPECT_EQ(line, "bin,d_i,mass");
    std::getline(buf, line);
    EXPECT_EQ(line, "0,1,0.5");
    std::getline(buf, line);
    EXPECT_EQ(line, "1,2,0.25");
  }
  {
    const std::vector<double> sigma = {0.1, 0.2, 0.3};
    std::stringstream buf;
    write_pooled_csv(buf, pooled, sigma);
    std::string line;
    std::getline(buf, line);
    EXPECT_EQ(line, "bin,d_i,mass,sigma");
    std::getline(buf, line);
    EXPECT_EQ(line, "0,1,0.5,0.1");
  }
  const std::vector<double> wrong = {0.1};
  std::stringstream buf;
  EXPECT_THROW(write_pooled_csv(buf, pooled, wrong),
               InvalidArgument);
}

TEST(Csv, ModelComparisonExport) {
  std::vector<fit::ModelComparison> ranking(2);
  ranking[0].family = "zeta";
  ranking[0].parameters = {{"alpha", 2.0}};
  ranking[0].log_likelihood = -100.0;
  ranking[0].aic = 202.0;
  ranking[0].delta_aic = 0.0;
  ranking[0].bic = 205.0;
  ranking[0].delta_bic = 0.0;
  ranking[1].family = "lognormal";
  ranking[1].parameters = {{"mu", 1.0}, {"sigma", 0.5}};
  ranking[1].log_likelihood = -120.0;
  ranking[1].aic = 244.0;
  ranking[1].delta_aic = 42.0;
  ranking[1].bic = 250.0;
  ranking[1].delta_bic = 45.0;
  std::stringstream buf;
  write_model_comparison_csv(buf, ranking);
  std::string line;
  std::getline(buf, line);
  EXPECT_EQ(line,
            "family,log_likelihood,aic,delta_aic,bic,delta_bic,"
            "parameters");
  std::getline(buf, line);
  EXPECT_EQ(line, "zeta,-100,202,0,205,0,alpha=2");
  std::getline(buf, line);
  EXPECT_EQ(line, "lognormal,-120,244,42,250,45,mu=1;sigma=0.5");
}

TEST(EdgeList, RoundTripsWithIsolatedNodes) {
  graph::Graph g(6);
  g.add_edge(0, 3);
  g.add_edge(3, 5);
  // nodes 1, 2, 4 isolated
  std::stringstream buf;
  write_edge_list(buf, g);
  const auto parsed = read_edge_list(buf);
  EXPECT_EQ(parsed.num_nodes(), 6u);
  EXPECT_EQ(parsed.edges(), g.edges());
}

TEST(EdgeList, InfersNodeCountWithoutDirective) {
  std::stringstream buf("0 2\n7 1\n");
  const auto g = read_edge_list(buf);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, RejectsOutOfRangeEndpoints) {
  std::stringstream buf("# nodes=3\n0 5\n");
  EXPECT_THROW(read_edge_list(buf), DataError);
  std::stringstream malformed("0\n");
  EXPECT_THROW(read_edge_list(malformed), DataError);
}

TEST(EdgeList, EmptyInputIsEmptyGraph) {
  std::stringstream buf("# just a comment\n");
  const auto g = read_edge_list(buf);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csv, PanelExport) {
  const std::vector<double> measured = {0.6, 0.3, 0.1};
  const std::vector<double> sigma = {0.01, 0.02, 0.03};
  const stats::LogBinned model({0.55, 0.35, 0.08, 0.02});
  std::stringstream buf;
  write_panel_csv(buf, measured, sigma, model);
  std::string line;
  std::getline(buf, line);
  EXPECT_EQ(line, "bin,d_i,measured,sigma,model");
  std::getline(buf, line);
  EXPECT_EQ(line, "0,1,0.6,0.01,0.55");
  // Model has one more bin than measured: row padded with zeros.
  std::getline(buf, line);
  std::getline(buf, line);
  std::getline(buf, line);
  EXPECT_EQ(line, "3,8,0,0,0.02");
  const std::vector<double> bad_sigma = {0.1};
  std::stringstream err;
  EXPECT_THROW(write_panel_csv(err, measured, bad_sigma, model),
               InvalidArgument);
}

TEST(TraceToPipeline, ParsedPacketsFeedWindows) {
  // End-to-end: serialize a synthetic stream, parse it back, aggregate.
  std::vector<traffic::Packet> pkts;
  for (NodeId i = 0; i < 100; ++i) pkts.push_back({i % 7, i % 5});
  std::stringstream buf;
  write_trace(buf, pkts);
  const auto parsed = read_trace(buf);
  const auto window = traffic::SparseCountMatrix::from_packets(parsed);
  EXPECT_EQ(window.total(), 100u);
}

}  // namespace
}  // namespace palu::io
