// Closed-form expected windows (ROADMAP item 3, DESIGN.md §5i).
//
// Under iid rate-proportional draws a window of N_V packets is an exact
// Multinomial over the merged pair support, so the expected log-binned
// histogram of every paper quantity — and the Table-I aggregates — are
// deterministic functionals of the rate vector:
//
//   * packet-count quantities (source / link / destination packets): the
//     entity's count is Binomial(N_V, p) with p its summed rate mass;
//   * link-count quantities (fan-out / fan-in / undirected degree): the
//     entity's count is Σ_j 1[link j visible], a Poisson-binomial over the
//     per-link visibilities π_j = 1 − (1 − q_j)^{N_V}.  The indicators are
//     negatively correlated under the multinomial (O(q_i·q_j)); treating
//     them as independent is the one modelling approximation of the path.
//
// Expected bin occupancies fold through math::binmass (exact DP / pmf walk
// below size thresholds, Edgeworth-corrected normal + Lugannani–Rice
// saddlepoint above), the per-link exp/log1p batches run through
// math::vexp, and everything is O(E + V) per window size with no RNG —
// one deterministic evaluation replaces a whole sampled ensemble.
//
// The evaluator is split into prepare(N_V) (per-window-size visibility
// vectors — the analytic analogue of the sampling stage) and
// evaluate(quantity) (marginal folding + reduction) so the sweep's stage
// clock can attribute time without this file touching clocks.
#pragma once

#include <cstdint>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/math/binmass.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"

namespace palu::traffic {

/// Expected Table-I aggregates for one window size (real-valued: these are
/// means of integer statistics; max_link_packets is the *median* of the
/// max under link independence — a location estimate, not a mean).
struct ExpectedAggregates {
  double valid_packets = 0.0;
  double unique_links = 0.0;
  double unique_sources = 0.0;
  double unique_destinations = 0.0;
  double max_link_packets = 0.0;
};

/// One analytic window evaluation for a (quantity, N_V) pair.
struct ExpectedWindow {
  /// Expected pooled distribution: bin_counts renormalized to unit mass
  /// (Σ bin_counts matches visible_entities only to the folding ladder's
  /// budget; the exact visibility lives in visible_entities) with
  /// trailing zero bins trimmed — directly comparable to the per-window
  /// LogBinned of the sampled paths.
  stats::LogBinned mass;
  /// Expected number of entities per log₂ bin (unnormalized).
  std::vector<double> bin_counts;
  /// Σ_entities P[value ≥ 1] — the expected entity population.
  double visible_entities = 0.0;
  /// Median of the maximum entity value under independence across
  /// entities; the analytic stand-in for the sampled d_max (top-candidate
  /// search, accurate to ~a bin edge — see DESIGN.md §5i).
  Degree max_value = 0;
  ExpectedAggregates aggregates;
};

struct ExpectedWindowOptions {
  /// Approximation thresholds of the marginal-folding ladder.
  math::BinMassOptions binmass;
  /// Entities tracked for the median-of-max searches.
  std::size_t max_candidates = 16;
};

/// Evaluates expected windows over one generator's pair support.  The view
/// must stay valid for the evaluator's lifetime (it aliases the
/// generator); node ids are assumed compact (dense O(max id) node arrays,
/// true for graph::Graph vertices).
class ExpectedWindowEvaluator {
 public:
  explicit ExpectedWindowEvaluator(PairSupportView support,
                                   ExpectedWindowOptions opts = {});

  /// Computes the per-link / per-pair visibility vectors for a window
  /// size (one batched vexp/vlog1p pass, arming the
  /// `theory.expected_window` failpoint).  Must be called before
  /// evaluate()/aggregates(); repeated calls switch window sizes.
  void prepare(Count n_valid);

  /// Expected histogram + aggregates of `q` for the prepared window size.
  ExpectedWindow evaluate(Quantity q);

  /// Expected Table-I aggregates alone for the prepared window size.
  ExpectedAggregates aggregates();

  std::size_t num_pairs() const noexcept { return support_.size(); }
  std::size_t num_links() const noexcept { return link_q_.size(); }

 private:
  struct Candidate {
    double mu = 0.0;
    double sigma = 0.0;
    double gamma3 = 0.0;  // skewness, for the Edgeworth location search
    double upper = 0.0;   // hard support bound of the entity's value
  };

  void fold_binomial_entities(std::span<const double> probs,
                              ExpectedWindow& out,
                              std::vector<Candidate>& cands);
  void fold_pb_entities(const std::vector<std::size_t>& offsets,
                        const std::vector<double>& pis, ExpectedWindow& out,
                        std::vector<Candidate>& cands);
  void note_candidate(std::vector<Candidate>& cands, double mu, double s2,
                      double m3, double upper) const;
  Degree median_of_max(const std::vector<Candidate>& cands) const;
  double sum_visibility(std::span<const double> masses);
  void finish(ExpectedWindow& out, const std::vector<Candidate>& cands);

  PairSupportView support_;
  ExpectedWindowOptions opts_;
  math::BinMassScratch scratch_;

  // Directed-link structure (built once): per-link rate mass and CSR
  // groupings by source node, destination node, and (for undirected
  // degree) by endpoint over non-self pairs.
  std::vector<double> link_q_;          // per directed link
  std::vector<double> node_src_mass_;   // Σ out-link q per node
  std::vector<double> node_dst_mass_;   // Σ in-link q per node
  std::vector<std::size_t> src_offsets_, src_links_;   // CSR node → links
  std::vector<std::size_t> dst_offsets_, dst_links_;   // CSR node → links
  std::vector<std::size_t> und_offsets_, und_pairs_;   // CSR node → pairs
  std::size_t num_nodes_ = 0;

  // Per-prepared-window-size state.
  Count n_valid_ = 0;
  bool prepared_ = false;
  bool aggregates_cached_ = false;
  ExpectedAggregates aggregates_cache_;
  std::vector<double> link_pi_;   // 1 − (1 − link_q)^{N_V}
  std::vector<double> pair_pi_;   // 1 − (1 − weight)^{N_V}
  std::vector<double> und_pi_;    // pair_pi_ gathered in und_pairs_ order
  std::vector<double> src_pi_;    // link_pi_ gathered in src_links_ order
  std::vector<double> dst_pi_;    // link_pi_ gathered in dst_links_ order
  std::vector<double> batch_;     // vexp/vlog1p staging
};

}  // namespace palu::traffic
