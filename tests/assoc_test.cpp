// Unit tests for the D4M-style associative-array substrate.
#include <gtest/gtest.h>

#include "palu/traffic/assoc.hpp"

namespace palu::traffic {
namespace {

TEST(SparseVector, SetAddAt) {
  SparseVector v;
  v.set(3, 2.0);
  v.add(3, 1.5);
  v.add(7, 4.0);
  EXPECT_DOUBLE_EQ(v.at(3), 3.5);
  EXPECT_DOUBLE_EQ(v.at(7), 4.0);
  EXPECT_DOUBLE_EQ(v.at(100), 0.0);
  EXPECT_EQ(v.nnz(), 2u);
}

TEST(SparseVector, ZeroValuesAreNotStored) {
  SparseVector v;
  v.set(1, 0.0);
  EXPECT_EQ(v.nnz(), 0u);
  v.add(2, 5.0);
  v.add(2, -5.0);  // exact cancellation removes the key
  EXPECT_EQ(v.nnz(), 0u);
  v.set(3, 1.0);
  v.set(3, 0.0);
  EXPECT_EQ(v.nnz(), 0u);
}

TEST(SparseVector, SumAndZeroNorm) {
  SparseVector v;
  v.set(1, 2.5);
  v.set(9, -1.0);
  EXPECT_DOUBLE_EQ(v.sum(), 1.5);
  const SparseVector z = v.zero_norm();
  EXPECT_DOUBLE_EQ(z.at(1), 1.0);
  EXPECT_DOUBLE_EQ(z.at(9), 1.0);
  EXPECT_DOUBLE_EQ(z.sum(), 2.0);
}

TEST(SparseVector, PlusAndDot) {
  SparseVector a, b;
  a.set(1, 2.0);
  a.set(2, 3.0);
  b.set(2, 4.0);
  b.set(3, 5.0);
  const SparseVector s = a.plus(b);
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(2), 7.0);
  EXPECT_DOUBLE_EQ(s.at(3), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 12.0);
  EXPECT_DOUBLE_EQ(b.dot(a), 12.0);
}

TEST(SparseVector, SortedSnapshot) {
  SparseVector v;
  v.set(9, 1.0);
  v.set(2, 2.0);
  const auto s = v.sorted();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].first, 2u);
  EXPECT_EQ(s[1].first, 9u);
}

AssocArray small_matrix() {
  // [[., 3, .], [1, ., 2]] with rows {0, 5}, cols {10, 11, 12}.
  AssocArray a;
  a.add(0, 11, 3.0);
  a.add(5, 10, 1.0);
  a.add(5, 12, 2.0);
  return a;
}

TEST(AssocArray, AddAtSum) {
  AssocArray a = small_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 11), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_EQ(a.nnz(), 3u);
  a.add(0, 11, -3.0);  // cancel to zero removes the cell
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(AssocArray, ZeroNormAndTranspose) {
  const AssocArray a = small_matrix();
  EXPECT_DOUBLE_EQ(a.zero_norm().sum(), 3.0);
  const AssocArray t = a.transposed();
  EXPECT_DOUBLE_EQ(t.at(11, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.at(10, 5), 1.0);
  EXPECT_EQ(t.nnz(), a.nnz());
}

TEST(AssocArray, RowAndColSums) {
  const AssocArray a = small_matrix();
  const SparseVector rows = a.row_sums();
  EXPECT_DOUBLE_EQ(rows.at(0), 3.0);
  EXPECT_DOUBLE_EQ(rows.at(5), 3.0);
  const SparseVector cols = a.col_sums();
  EXPECT_DOUBLE_EQ(cols.at(10), 1.0);
  EXPECT_DOUBLE_EQ(cols.at(11), 3.0);
  EXPECT_DOUBLE_EQ(cols.at(12), 2.0);
}

TEST(AssocArray, MatrixVectorMultiply) {
  const AssocArray a = small_matrix();
  SparseVector v;
  v.set(10, 1.0);
  v.set(11, 10.0);
  v.set(12, 100.0);
  const SparseVector out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out.at(0), 30.0);
  EXPECT_DOUBLE_EQ(out.at(5), 201.0);
}

TEST(AssocArray, HadamardAndPlus) {
  AssocArray a = small_matrix();
  AssocArray b;
  b.add(5, 10, 4.0);
  b.add(0, 10, 9.0);  // not present in a
  const AssocArray h = a.hadamard(b);
  EXPECT_EQ(h.nnz(), 1u);
  EXPECT_DOUBLE_EQ(h.at(5, 10), 4.0);
  const AssocArray s = a.plus(b);
  EXPECT_DOUBLE_EQ(s.at(5, 10), 5.0);
  EXPECT_DOUBLE_EQ(s.at(0, 10), 9.0);
  EXPECT_DOUBLE_EQ(s.at(0, 11), 3.0);
}

TEST(AssocArray, SortedSnapshotDeterministic) {
  const auto s = small_matrix().sorted();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].row, 0u);
  EXPECT_EQ(s[0].col, 11u);
  EXPECT_EQ(s[1].row, 5u);
  EXPECT_EQ(s[1].col, 10u);
  EXPECT_EQ(s[2].row, 5u);
  EXPECT_EQ(s[2].col, 12u);
}

TEST(AssocArray, TableOneIdentities) {
  // The Table-I contractions, written in the algebra, on a known window.
  AssocArray a;
  a.add(1, 5, 3.0);
  a.add(1, 6, 2.0);
  a.add(2, 5, 1.0);
  a.add(2, 7, 4.0);
  EXPECT_DOUBLE_EQ(a.row_sums().sum(), 10.0);            // valid packets
  EXPECT_DOUBLE_EQ(a.zero_norm().sum(), 4.0);            // unique links
  EXPECT_DOUBLE_EQ(a.row_sums().zero_norm().sum(), 2.0); // unique sources
  EXPECT_DOUBLE_EQ(a.col_sums().zero_norm().sum(), 3.0); // unique dests
  // Transpose duality: unique sources of Aᵀ are the destinations of A.
  EXPECT_DOUBLE_EQ(a.transposed().row_sums().zero_norm().sum(), 3.0);
}

}  // namespace
}  // namespace palu::traffic
