file(REMOVE_RECURSE
  "CMakeFiles/palu_tool.dir/palu_tool.cpp.o"
  "CMakeFiles/palu_tool.dir/palu_tool.cpp.o.d"
  "palu_tool"
  "palu_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
