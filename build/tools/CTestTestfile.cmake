# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(palu_tool_help "/root/repo/build/tools/palu_tool" "help")
set_tests_properties(palu_tool_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_unknown_command "/root/repo/build/tools/palu_tool" "frobnicate")
set_tests_properties(palu_tool_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_missing_trace "/root/repo/build/tools/palu_tool" "analyze")
set_tests_properties(palu_tool_missing_trace PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_generate "sh" "-c" "/root/repo/build/tools/palu_tool generate --nodes 5000 --packets 30000 --seed 5 > /root/repo/build/tools/smoke_trace.txt")
set_tests_properties(palu_tool_generate PROPERTIES  FIXTURES_SETUP "trace_fixture" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_analyze "/root/repo/build/tools/palu_tool" "analyze" "--trace" "/root/repo/build/tools/smoke_trace.txt" "--nvalid" "10000")
set_tests_properties(palu_tool_analyze PROPERTIES  FIXTURES_REQUIRED "trace_fixture" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_analyze_csv "/root/repo/build/tools/palu_tool" "analyze" "--trace" "/root/repo/build/tools/smoke_trace.txt" "--nvalid" "10000" "--csv")
set_tests_properties(palu_tool_analyze_csv PROPERTIES  FIXTURES_REQUIRED "trace_fixture" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(palu_tool_census "/root/repo/build/tools/palu_tool" "census" "--trace" "/root/repo/build/tools/smoke_trace.txt" "--nvalid" "10000")
set_tests_properties(palu_tool_census PROPERTIES  FIXTURES_REQUIRED "trace_fixture" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
