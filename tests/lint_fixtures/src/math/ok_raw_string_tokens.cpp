// Fixture: tokenizer exactness.  Nothing inside string literals or raw
// strings may trip a rule — this file sits in layer "math" so a leaked
// fake include would also fire include-layering.
// palu-lint-expect-clean
#include <string>

// The raw string swallows everything up to its custom delimiter:
// quotes, a fake cross-layer include, banned identifiers, and even a
// suppression marker (markers are read from comments only).
const std::string kDoc = R"lint(
  #include "palu/serve/daemon.hpp"
  PALU_FAILPOINT("not-a-registered-failpoint")
  throw std::runtime_error("nope");
  std::rand(); std::chrono::steady_clock::now(); std::random_device rd;
  // palu-lint: allow(determinism)
)lint";

const std::string kEscapes = "quote \" then ::now() and std::rand()";
const char* kFakeInclude = "#include \"palu/serve/queue.hpp\"";

int raw_ok() { return static_cast<int>(kDoc.size() + kEscapes.size()); }
