file(REMOVE_RECURSE
  "CMakeFiles/palu_common.dir/error.cpp.o"
  "CMakeFiles/palu_common.dir/error.cpp.o.d"
  "libpalu_common.a"
  "libpalu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
