file(REMOVE_RECURSE
  "libpalu_traffic.a"
)
