file(REMOVE_RECURSE
  "CMakeFiles/palu_core.dir/anomaly.cpp.o"
  "CMakeFiles/palu_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/palu_core.dir/components_analysis.cpp.o"
  "CMakeFiles/palu_core.dir/components_analysis.cpp.o.d"
  "CMakeFiles/palu_core.dir/directed.cpp.o"
  "CMakeFiles/palu_core.dir/directed.cpp.o.d"
  "CMakeFiles/palu_core.dir/estimate.cpp.o"
  "CMakeFiles/palu_core.dir/estimate.cpp.o.d"
  "CMakeFiles/palu_core.dir/generator.cpp.o"
  "CMakeFiles/palu_core.dir/generator.cpp.o.d"
  "CMakeFiles/palu_core.dir/params.cpp.o"
  "CMakeFiles/palu_core.dir/params.cpp.o.d"
  "CMakeFiles/palu_core.dir/streaming.cpp.o"
  "CMakeFiles/palu_core.dir/streaming.cpp.o.d"
  "CMakeFiles/palu_core.dir/theory.cpp.o"
  "CMakeFiles/palu_core.dir/theory.cpp.o.d"
  "CMakeFiles/palu_core.dir/weighted.cpp.o"
  "CMakeFiles/palu_core.dir/weighted.cpp.o.d"
  "CMakeFiles/palu_core.dir/zm_connection.cpp.o"
  "CMakeFiles/palu_core.dir/zm_connection.cpp.o.d"
  "libpalu_core.a"
  "libpalu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
