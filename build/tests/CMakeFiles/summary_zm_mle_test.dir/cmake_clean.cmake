file(REMOVE_RECURSE
  "CMakeFiles/summary_zm_mle_test.dir/summary_zm_mle_test.cpp.o"
  "CMakeFiles/summary_zm_mle_test.dir/summary_zm_mle_test.cpp.o.d"
  "summary_zm_mle_test"
  "summary_zm_mle_test.pdb"
  "summary_zm_mle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_zm_mle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
