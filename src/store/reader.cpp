// Timing TU: steady_clock reads here feed only the palu_store_decode_ns
// observability histogram; no decoded window content ever depends on the
// clock.  Listed in tools/timing_files.txt for palu_lint's determinism
// rule.
#include "palu/store/reader.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/store/writer.hpp"

namespace palu::store {

namespace {

using Clock = std::chrono::steady_clock;

obs::Registry& pick(obs::Registry* r) {
  return r != nullptr ? *r : obs::default_registry();
}

/// Full positioned read; throws DataError on I/O error or short read.
void pread_exact(int fd, void* dst, std::size_t n, std::uint64_t offset,
                 const std::string& path) {
  auto* p = static_cast<unsigned char*>(dst);
  while (n > 0) {
    const ::ssize_t got = ::pread(fd, p, n, static_cast<::off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw DataError("store: read failed on '" + path +
                      "': " + std::strerror(errno));
    }
    if (got == 0) {
      throw DataError("store: short read on '" + path +
                      "' (file truncated?)");
    }
    p += got;
    n -= static_cast<std::size_t>(got);
    offset += static_cast<std::uint64_t>(got);
  }
}

/// Unchecked varint decode for the hot loop: the caller guarantees at
/// least kMaxVarintBytes of readable tail (checksum-verified payload, so
/// the bytes are exactly what the writer emitted).  The first three
/// widths are unrolled with constant shifts: 1-byte values (sorted-pair
/// u deltas, small packet counts) take one compare and no loop, and the
/// 2/3-byte zigzag v deltas avoid the loop-carried shift dependency of
/// the generic decoder.
inline std::uint64_t decode_varint_fast(const unsigned char*& p) noexcept {
  const unsigned char* q = p;
  const std::uint64_t b0 = q[0];
  if (b0 < 0x80) {
    p = q + 1;
    return b0;
  }
  const std::uint64_t b1 = q[1];
  if (b1 < 0x80) {
    p = q + 2;
    return (b0 & 0x7F) | (b1 << 7);
  }
  const std::uint64_t b2 = q[2];
  if (b2 < 0x80) {
    p = q + 3;
    return (b0 & 0x7F) | ((b1 & 0x7F) << 7) | (b2 << 14);
  }
  std::uint64_t x =
      (b0 & 0x7F) | ((b1 & 0x7F) << 7) | ((b2 & 0x7F) << 14);
  unsigned shift = 21;
  q += 3;
  for (;;) {
    const std::uint64_t b = *q++;
    x |= (b & 0x7F) << shift;
    if (b < 0x80) {
      p = q;
      return x;
    }
    shift += 7;
  }
}

struct BlockView {
  BlockHeader header;
  const unsigned char* payload = nullptr;
};

/// Parses and validates a block's fixed header from `data` (which must
/// hold `bytes` readable bytes).  Returns false (no throw) when the bytes
/// do not look like an intact block — the open-time recovery scan uses
/// this to find the last clean block before a torn tail.
bool parse_block(const unsigned char* data, std::uint64_t bytes,
                 BlockView& out) noexcept {
  if (bytes < kBlockHeaderBytes) return false;
  if (get_u32(data) != kBlockMagic) return false;
  out.header.quantity_mask = get_u32(data + 4);
  out.header.window_index = get_u64(data + 8);
  out.header.n_valid = get_u64(data + 16);
  out.header.record_count = get_u32(data + 24);
  out.header.payload_bytes = get_u32(data + 28);
  out.header.payload_checksum = get_u64(data + 32);
  if (out.header.payload_bytes > bytes - kBlockHeaderBytes) return false;
  out.payload = data + kBlockHeaderBytes;
  if (checksum64(out.payload, out.header.payload_bytes) !=
      out.header.payload_checksum) {
    return false;
  }
  return true;
}

}  // namespace

WindowStoreReader::WindowStoreReader(const std::string& dir,
                                     const IngestOptions& opts)
    : path_(WindowStoreWriter::store_file(dir)),
      blocks_read_(pick(opts.metrics).counter(obs::names::kStoreBlocksRead)),
      bytes_read_(pick(opts.metrics).counter(obs::names::kStoreBytesRead)),
      checksum_failures_(
          pick(opts.metrics).counter(obs::names::kStoreChecksumFailures)),
      torn_tails_(pick(opts.metrics).counter(obs::names::kStoreTornTails)),
      decode_ns_(pick(opts.metrics).histogram(obs::names::kStoreDecodeNs)) {
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw DataError("store: cannot open '" + path_ +
                    "': " + std::strerror(errno));
  }
  try {
    const ::off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      throw DataError("store: cannot size '" + path_ +
                      "': " + std::strerror(errno));
    }
    const auto file_size = static_cast<std::uint64_t>(end);
    if (file_size < kFileHeaderBytes) {
      throw DataError("store: '" + path_ + "' is not a window store " +
                      "(file shorter than the header)");
    }
    unsigned char head[kFileHeaderBytes];
    pread_exact(fd_, head, kFileHeaderBytes, 0, path_);
    if (get_u64(head) != kFileMagic) {
      throw DataError("store: '" + path_ +
                      "' is not a window store (bad magic)");
    }
    if (get_u32(head + 8) != kEndianTag) {
      throw DataError("store: '" + path_ +
                      "' was written on a different-endian host");
    }
    if (get_u32(head + 12) != kFormatVersion) {
      throw DataError("store: '" + path_ + "' has format version " +
                      std::to_string(get_u32(head + 12)) +
                      ", this build reads version " +
                      std::to_string(kFormatVersion));
    }
    header_.node_domain = get_u64(head + 16);
    header_.seed = get_u64(head + 24);
    if (header_.node_domain == 0) {
      throw DataError("store: '" + path_ + "' declares an empty node domain");
    }
    load_manifest(file_size, opts);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

WindowStoreReader::~WindowStoreReader() {
  if (fd_ >= 0) ::close(fd_);
}

void WindowStoreReader::load_manifest(std::uint64_t file_size,
                                      const IngestOptions& opts) {
  if (file_size < kFileHeaderBytes + kTrailerBytes) {
    recover_blocks(file_size, opts, "file ends before the trailer");
    return;
  }
  unsigned char trailer[kTrailerBytes];
  pread_exact(fd_, trailer, kTrailerBytes, file_size - kTrailerBytes, path_);
  if (get_u64(trailer + 16) != kTrailerMagic) {
    recover_blocks(file_size, opts, "trailer magic missing");
    return;
  }
  const std::uint64_t manifest_offset = get_u64(trailer);
  const std::uint64_t num_blocks = get_u64(trailer + 8);
  const std::uint64_t manifest_bytes =
      kManifestHeaderBytes + num_blocks * kManifestEntryBytes + 8;
  if (manifest_offset < kFileHeaderBytes ||
      manifest_offset + manifest_bytes != file_size - kTrailerBytes) {
    recover_blocks(file_size, opts, "trailer does not frame the manifest");
    return;
  }
  std::vector<unsigned char> buf(manifest_bytes);
  pread_exact(fd_, buf.data(), buf.size(), manifest_offset, path_);
  if (get_u32(buf.data()) != kManifestMagic ||
      get_u64(buf.data() + 8) != num_blocks) {
    recover_blocks(file_size, opts, "manifest header corrupt");
    return;
  }
  const unsigned char* entries = buf.data() + kManifestHeaderBytes;
  const std::uint64_t entry_bytes = num_blocks * kManifestEntryBytes;
  if (checksum64(entries, entry_bytes) != get_u64(entries + entry_bytes)) {
    checksum_failures_.inc();
    recover_blocks(file_size, opts, "manifest checksum mismatch");
    return;
  }
  manifest_.reserve(num_blocks);
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    const unsigned char* e = entries + i * kManifestEntryBytes;
    ManifestEntry m{get_u64(e), get_u64(e + 8), get_u64(e + 16)};
    if (m.offset < kFileHeaderBytes || m.block_bytes < kBlockHeaderBytes ||
        m.offset + m.block_bytes > manifest_offset) {
      manifest_.clear();
      recover_blocks(file_size, opts,
                     "manifest entry " + std::to_string(i) +
                         " points outside the block region");
      return;
    }
    manifest_.push_back(m);
  }
  std::sort(manifest_.begin(), manifest_.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.window_index < b.window_index;
            });
  report_.lines_read = manifest_.size();
  report_.records_kept = manifest_.size();
}

void WindowStoreReader::recover_blocks(std::uint64_t file_size,
                                       const IngestOptions& opts,
                                       const std::string& why) {
  torn_tails_.inc();
  if (opts.policy == ErrorPolicy::kStrict) {
    throw DataError("store: '" + path_ + "' has a torn tail (" + why +
                    "); re-open with --on-error skip to recover the "
                    "intact prefix");
  }
  // Scan the contiguous prefix of intact blocks.  Each candidate block is
  // read whole and checksum-verified, so a recovered store never serves a
  // silently corrupt window.
  std::vector<unsigned char> buf;
  std::uint64_t off = kFileHeaderBytes;
  while (off + kBlockHeaderBytes <= file_size) {
    unsigned char head[kBlockHeaderBytes];
    pread_exact(fd_, head, kBlockHeaderBytes, off, path_);
    if (get_u32(head) != kBlockMagic) break;
    const std::uint64_t payload_bytes = get_u32(head + 28);
    if (off + kBlockHeaderBytes + payload_bytes > file_size) break;
    buf.resize(kBlockHeaderBytes + payload_bytes);
    pread_exact(fd_, buf.data(), buf.size(), off, path_);
    BlockView view;
    if (!parse_block(buf.data(), buf.size(), view)) break;
    manifest_.push_back(ManifestEntry{view.header.window_index, off,
                                      static_cast<std::uint64_t>(buf.size())});
    off += buf.size();
  }
  std::sort(manifest_.begin(), manifest_.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.window_index < b.window_index;
            });
  const std::uint64_t torn_bytes = file_size - off;
  report_.lines_read = manifest_.size() + 1;
  report_.records_kept = manifest_.size();
  report_.lines_dropped = 1;
  report_.first_error =
      IngestError{manifest_.size(),
                  "torn tail: " + std::to_string(torn_bytes) +
                      " bytes after the last intact block (" + why + ")",
                  ""};
  if (report_.lines_dropped > opts.max_bad_lines) {
    throw DataError("store: '" + path_ +
                    "' torn-tail recovery exceeds the error budget "
                    "(max_bad_lines = " +
                    std::to_string(opts.max_bad_lines) + ")");
  }
}

Count WindowStoreReader::read_window(
    std::size_t index, std::vector<std::byte>& buf,
    std::vector<traffic::EdgePacketCounts>& out) {
  PALU_CHECK(index < manifest_.size(),
             "WindowStoreReader::read_window: index out of range");
  PALU_FAILPOINT("io.replay_read");
  const ManifestEntry& m = manifest_[index];
  buf.resize(m.block_bytes);
  pread_exact(fd_, buf.data(), m.block_bytes, m.offset, path_);
  bytes_read_.inc(m.block_bytes);

  const auto* data = reinterpret_cast<const unsigned char*>(buf.data());
  BlockView view;
  if (!parse_block(data, m.block_bytes, view)) {
    checksum_failures_.inc();
    throw DataError("store: block for window " +
                    std::to_string(m.window_index) + " in '" + path_ +
                    "' is corrupt (bad magic, size, or checksum)");
  }
  if (view.header.window_index != m.window_index ||
      kBlockHeaderBytes + std::uint64_t{view.header.payload_bytes} !=
          m.block_bytes) {
    checksum_failures_.inc();
    throw DataError("store: block for window " +
                    std::to_string(m.window_index) + " in '" + path_ +
                    "' does not match its manifest entry");
  }

  const auto t0 = Clock::now();
  out.clear();
  out.reserve(view.header.record_count);
  const unsigned char* p = view.payload;
  const unsigned char* end = p + view.header.payload_bytes;
  // The fast path decodes without bounds checks; safety comes from
  // batching instead of a per-record `end - p` compare (which would sit
  // on the pointer-carried critical path and costs ~35% of the decode).
  // A batch of K records reads at most K * kMaxRecordBytes bytes, so any
  // K <= (end - p) / kMaxRecordBytes cannot overrun even if every varint
  // is maximal; the few records too close to `end` for that guarantee
  // fall back to the checked decoder.  The payload checksum has already
  // been verified, so in-bounds bytes are exactly what the writer
  // emitted.
  constexpr std::size_t kMaxRecordBytes = 4 * kMaxVarintBytes;
  NodeId u = 0;
  std::int64_t v = 0;
  std::uint32_t decoded = 0;
  for (;;) {
    const std::uint64_t batch = std::min<std::uint64_t>(
        view.header.record_count - decoded,
        static_cast<std::uint64_t>(end - p) / kMaxRecordBytes);
    if (batch == 0) break;
    for (std::uint64_t i = 0; i < batch; ++i) {
      u += decode_varint_fast(p);
      v += zigzag_decode(decode_varint_fast(p));
      const Count forward = decode_varint_fast(p);
      const Count backward = decode_varint_fast(p);
      out.push_back(traffic::EdgePacketCounts{u, static_cast<NodeId>(v),
                                              forward, backward});
    }
    decoded += static_cast<std::uint32_t>(batch);
  }
  while (decoded < view.header.record_count) {
    std::uint64_t du = 0, dv = 0, forward = 0, backward = 0;
    p = get_varint(p, end, du);
    if (p != nullptr) p = get_varint(p, end, dv);
    if (p != nullptr) p = get_varint(p, end, forward);
    if (p != nullptr) p = get_varint(p, end, backward);
    if (p == nullptr) break;
    u += du;
    v += zigzag_decode(dv);
    out.push_back(
        traffic::EdgePacketCounts{u, static_cast<NodeId>(v), forward,
                                  backward});
    ++decoded;
  }
  if (decoded != view.header.record_count || p != end) {
    checksum_failures_.inc();
    throw DataError("store: block for window " +
                    std::to_string(m.window_index) + " in '" + path_ +
                    "' decoded to " + std::to_string(decoded) +
                    " records, header says " +
                    std::to_string(view.header.record_count));
  }
  decode_ns_.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count()));
  blocks_read_.inc();
  return view.header.n_valid;
}

}  // namespace palu::store
