# Empty compiler generated dependencies file for traffic_pipeline.
# This may be replaced when dependencies are built.
