file(REMOVE_RECURSE
  "CMakeFiles/core_theory_test.dir/core_theory_test.cpp.o"
  "CMakeFiles/core_theory_test.dir/core_theory_test.cpp.o.d"
  "core_theory_test"
  "core_theory_test.pdb"
  "core_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
