file(REMOVE_RECURSE
  "CMakeFiles/core_estimate_test.dir/core_estimate_test.cpp.o"
  "CMakeFiles/core_estimate_test.dir/core_estimate_test.cpp.o.d"
  "core_estimate_test"
  "core_estimate_test.pdb"
  "core_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
