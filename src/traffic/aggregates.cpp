#include "palu/traffic/aggregates.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "palu/traffic/assoc.hpp"

namespace palu::traffic {

Aggregates aggregates_summation(const SparseCountMatrix& a) {
  Aggregates out;
  std::unordered_map<NodeId, Count> row_sum;
  std::unordered_map<NodeId, Count> col_sum;
  for (const auto& e : a.entries()) {
    out.valid_packets += e.packets;
    ++out.unique_links;  // Σ |A(i,j)|₀
    row_sum[e.src] += e.packets;
    col_sum[e.dst] += e.packets;
    out.max_link_packets = std::max(out.max_link_packets, e.packets);
  }
  out.unique_sources = row_sum.size();       // Σ_i |Σ_j A(i,j)|₀
  out.unique_destinations = col_sum.size();  // Σ_j |Σ_i A(i,j)|₀
  return out;
}

Aggregates aggregates_matrix(const SparseCountMatrix& a) {
  // The Table-I matrix column, written in associative-array algebra
  // exactly as the paper states it.
  AssocArray mat;
  Count max_link = 0;
  for (const auto& e : a.entries()) {
    mat.add(e.src, e.dst, static_cast<double>(e.packets));
    max_link = std::max(max_link, e.packets);
  }
  const auto as_count = [](double x) {
    return static_cast<Count>(std::llround(x));
  };
  Aggregates out;
  out.valid_packets = as_count(mat.row_sums().sum());       // 1ᵀ A 1
  out.unique_links = as_count(mat.zero_norm().sum());       // 1ᵀ|A|₀1
  out.unique_sources =
      as_count(mat.row_sums().zero_norm().sum());           // |A·1|₀
  out.unique_destinations =
      as_count(mat.col_sums().zero_norm().sum());           // |1ᵀA|₀
  out.max_link_packets = max_link;
  return out;
}

}  // namespace palu::traffic
