file(REMOVE_RECURSE
  "CMakeFiles/math_test.dir/math_test.cpp.o"
  "CMakeFiles/math_test.dir/math_test.cpp.o.d"
  "math_test"
  "math_test.pdb"
  "math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
