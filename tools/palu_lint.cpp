// palu_lint: the repo's dependency-free static analyzer.
//
// PR 3 introduced this tool as a strip-and-regex linter; PR 8 re-grounded
// it on a real token stream (tools/analyze/token.hpp) and grew it into a
// small multi-pass analyzer.  The driver below owns file collection,
// configuration, suppression filtering, and reporting; the passes live in
// tools/analyze/ and are documented in DESIGN.md §5h.
//
// Rules (see --list-rules):
//   failpoint-registry      PALU_FAILPOINT names must be registered
//   typed-error             no `throw std::...` in library code
//   determinism             no std::rand / random_device / time(nullptr) /
//                           ::now() outside the timing allowlist
//   header-pragma-once      headers start with #pragma once
//   header-using-namespace  no `using namespace` at header scope
//   include-layering        palu/ includes must follow tools/layers.txt
//   lock-guarded-by         mutex-holding classes annotate their members
//   lock-discipline         guarded members are touched under the lock
//   hot-path-registration   no Registry name-lookups inside loop bodies
//   stale-suppression       every allow() must suppress something
//
// The legacy CLI is unchanged: without --analyze / --layers only the five
// original rules (plus the registry stale checks) run, on the new token
// core.  Exit codes: 0 clean, 1 violations (or selftest failure), 2
// usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/passes.hpp"
#include "analyze/token.hpp"

namespace fs = std::filesystem;

namespace palu::analyze {
namespace {

struct Options {
  std::string registry_path;
  std::string timing_path;
  std::string layers_path;
  std::string selftest_dir;
  bool analyze = false;
  bool dump_graph = false;
  bool stale_check = true;
  bool list_rules = false;
  std::vector<std::string> roots;
};

/// Loaded configuration shared by every file's pass run.
struct Config {
  std::set<std::string> registry;
  bool have_registry = false;
  std::vector<std::string> timing_entries;
  LayerConfig layers;
};

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool collect_files(const fs::path& root, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (is_source_file(root)) out->push_back(root);
    return true;
  }
  if (!fs::is_directory(root, ec)) return false;
  fs::recursive_directory_iterator it(root, ec);
  if (ec) return false;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && is_source_file(entry.path())) {
      out->push_back(entry.path());
    }
  }
  return true;
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool make_scan(const fs::path& path, const Config& cfg, FileScan* scan) {
  std::string text;
  if (!read_file(path, &text)) return false;
  scan->path = path;
  const std::string ext = path.extension().string();
  scan->header = ext == ".hpp" || ext == ".h";
  scan->layer_dir =
      cfg.layers.loaded ? layer_dir_of(path, cfg.layers) : std::string();
  scan->toks = tokenize(text);
  scan->markers = collect_markers(scan->toks);
  return true;
}

/// Runs every enabled pass over one tokenized file, filters the result
/// through the file's suppressions, and appends survivors to `out`.
void run_file_passes(FileScan& scan, const Options& opt, const Config& cfg,
                     const std::map<std::string, ClassInfo>& classes,
                     const std::vector<MethodBody>& methods,
                     std::set<std::string>* seen_failpoints, EdgeSet* edges,
                     std::map<std::string, bool>* timing_seen,
                     std::vector<Violation>* out) {
  std::vector<Violation> local;
  CoreRuleOptions core;
  core.registry = cfg.have_registry ? &cfg.registry : nullptr;
  core.registry_path = opt.registry_path;
  run_core_rules(scan, core, seen_failpoints, &local);
  if (cfg.layers.loaded) check_includes(scan, cfg.layers, edges, &local);
  if (opt.analyze) {
    check_lock_discipline(scan, classes, methods, &local);
    check_hot_paths(scan, &local);
  }
  // Central allowlists are consulted before in-file markers, so a marker
  // made redundant by the central list stays unused and is reported stale.
  std::set<std::string> config_file_wide;
  for (const std::string& entry : cfg.timing_entries) {
    if (path_matches_suffix(scan.path, entry)) {
      config_file_wide.insert(kRuleDeterminism);
      if (timing_seen != nullptr) (*timing_seen)[entry] = true;
    }
  }
  apply_suppressions(scan, config_file_wide, std::move(local), out);
  if (opt.analyze) check_stale_markers(scan, out);
}

void report(const Violation& v) {
  std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
               v.rule.c_str(), v.message.c_str());
}

bool load_config(const Options& opt, Config* cfg) {
  if (!opt.registry_path.empty()) {
    if (!load_entries(opt.registry_path, &cfg->registry)) {
      std::fprintf(stderr, "palu_lint: cannot read registry %s\n",
                   opt.registry_path.c_str());
      return false;
    }
    cfg->have_registry = true;
  }
  if (!opt.timing_path.empty()) {
    std::set<std::string> entries;
    if (!load_entries(opt.timing_path, &entries)) {
      std::fprintf(stderr, "palu_lint: cannot read timing allowlist %s\n",
                   opt.timing_path.c_str());
      return false;
    }
    cfg->timing_entries.assign(entries.begin(), entries.end());
  }
  if (!opt.layers_path.empty()) {
    if (!load_layers(opt.layers_path, &cfg->layers)) {
      std::fprintf(stderr, "palu_lint: cannot read layer registry %s\n",
                   opt.layers_path.c_str());
      return false;
    }
  }
  return true;
}

// ----------------------------------------------------------- tree lint

int run_lint(const Options& opt) {
  Config cfg;
  if (!load_config(opt, &cfg)) return 2;
  std::vector<Violation> violations;
  if (cfg.layers.loaded) {
    // The registry lives in tools/, so the repo root is its grandparent.
    const fs::path repo_root =
        fs::absolute(opt.layers_path).parent_path().parent_path();
    validate_layers(cfg.layers, repo_root, &violations);
  }

  std::vector<fs::path> files;
  for (const std::string& root : opt.roots) {
    if (!collect_files(root, &files)) {
      std::fprintf(stderr, "palu_lint: cannot read %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileScan> scans(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!make_scan(files[i], cfg, &scans[i])) {
      std::fprintf(stderr, "palu_lint: cannot read %s\n",
                   files[i].string().c_str());
      return 2;
    }
  }

  // Phase A: the lock-discipline pass needs the cross-file class registry
  // (headers declare, .cpp files define out-of-line) before any file can
  // be checked.
  std::map<std::string, ClassInfo> classes;
  std::vector<std::vector<MethodBody>> methods(scans.size());
  if (opt.analyze) {
    for (std::size_t i = 0; i < scans.size(); ++i) {
      scan_classes(scans[i], &classes, &methods[i]);
    }
  }

  // Phase B: per-file passes and suppression filtering.
  std::set<std::string> seen_failpoints;
  EdgeSet edges;
  std::map<std::string, bool> timing_seen;
  for (const std::string& entry : cfg.timing_entries) {
    timing_seen[entry] = false;
  }
  for (std::size_t i = 0; i < scans.size(); ++i) {
    run_file_passes(scans[i], opt, cfg, classes, methods[i],
                    &seen_failpoints, &edges, &timing_seen, &violations);
  }

  // Phase C: stale-entry checks for the central registries, mirroring the
  // per-file stale-suppression rule.
  if (opt.stale_check) {
    if (cfg.have_registry) {
      for (const std::string& name : cfg.registry) {
        if (seen_failpoints.count(name) == 0) {
          violations.push_back(
              {opt.registry_path, 0, kRuleFailpoint,
               "registered failpoint \"" + name +
                   "\" fires nowhere in the scanned tree; delete the "
                   "entry or restore the call site"});
        }
      }
    }
    for (const auto& [entry, seen] : timing_seen) {
      if (!seen) {
        violations.push_back(
            {opt.timing_path, 0, kRuleDeterminism,
             "timing allowlist entry \"" + entry +
                 "\" matches no scanned file; delete the entry or "
                 "restore the file"});
      }
    }
  }

  if (opt.dump_graph) {
    const std::string dot = dot_include_graph(cfg.layers, edges);
    std::fwrite(dot.data(), 1, dot.size(), stdout);
  }

  for (const Violation& v : violations) report(v);
  if (!violations.empty()) {
    std::fprintf(stderr, "palu_lint: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------ selftest

/// Fixture expectations: `palu-lint-expect: <rule>` comments list the
/// rules that must survive suppression; `palu-lint-expect-clean` asserts
/// none do.
struct Expectations {
  std::set<std::string> rules;
  bool clean = false;
  bool any = false;
};

Expectations parse_expectations(const FileScan& scan) {
  Expectations ex;
  for (const Token& comment : scan.toks.comments) {
    const std::string& text = comment.text;
    if (text.find("palu-lint-expect-clean") != std::string::npos) {
      ex.clean = true;
      ex.any = true;
    }
    const std::string tag = "palu-lint-expect:";
    std::size_t pos = text.find(tag);
    while (pos != std::string::npos) {
      std::size_t cursor = pos + tag.size();
      while (cursor < text.size() && text[cursor] == ' ') ++cursor;
      std::size_t end = cursor;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
              text[end] == '-')) {
        ++end;
      }
      if (end > cursor) {
        ex.rules.insert(text.substr(cursor, end - cursor));
        ex.any = true;
      }
      pos = text.find(tag, end);
    }
  }
  return ex;
}

std::string join(const std::set<std::string>& set) {
  std::string out;
  for (const std::string& s : set) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "(none)" : out;
}

int run_selftest(const Options& opt) {
  if (opt.registry_path.empty() || opt.layers_path.empty()) {
    std::fprintf(stderr,
                 "palu_lint: --selftest requires --registry and --layers "
                 "(the fixtures exercise both registries)\n");
    return 2;
  }
  Config cfg;
  if (!load_config(opt, &cfg)) return 2;

  std::vector<fs::path> files;
  if (!collect_files(opt.selftest_dir, &files) || files.empty()) {
    std::fprintf(stderr, "palu_lint: no fixtures under %s\n",
                 opt.selftest_dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());

  Options fixture_opt = opt;
  fixture_opt.analyze = true;
  std::map<std::string, bool> fired;
  std::map<std::string, bool> suppressed;
  for (const char* rule : kAllRules) {
    fired[rule] = false;
    suppressed[rule] = false;
  }
  std::vector<std::string> failures;

  for (const fs::path& file : files) {
    FileScan scan;
    if (!make_scan(file, cfg, &scan)) {
      std::fprintf(stderr, "palu_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    const Expectations expect = parse_expectations(scan);
    // Fixtures are independent test cases: class state is per fixture, so
    // two fixtures may reuse a class name.
    std::map<std::string, ClassInfo> classes;
    std::vector<MethodBody> methods;
    scan_classes(scan, &classes, &methods);
    std::set<std::string> seen_failpoints;
    EdgeSet edges;
    std::vector<Violation> got;
    run_file_passes(scan, fixture_opt, cfg, classes, methods,
                    &seen_failpoints, &edges, nullptr, &got);
    std::set<std::string> actual;
    for (const Violation& v : got) actual.insert(v.rule);

    const std::string name = file.string();
    if (!expect.any) {
      failures.push_back(name +
                         ": fixture declares no palu-lint-expect markers");
    } else if (expect.clean && !got.empty()) {
      failures.push_back(name + ": expected clean, got [" + join(actual) +
                         "]");
      for (const Violation& v : got) report(v);
    } else if (!expect.clean && actual != expect.rules) {
      failures.push_back(name + ": expected [" + join(expect.rules) +
                         "], got [" + join(actual) + "]");
      for (const Violation& v : got) report(v);
    }
    for (const std::string& rule : actual) fired[rule] = true;
    // Suppression credit: the fixture carries an allow marker for a rule
    // and that rule does not survive — the marker demonstrably worked.
    for (const Marker& m : scan.markers) {
      if (fired.count(m.rule) != 0 && actual.count(m.rule) == 0) {
        suppressed[m.rule] = true;
      }
    }
  }

  // The coverage contract: every rule must demonstrably fire and
  // demonstrably suppress somewhere in the fixture corpus.
  for (const char* rule : kAllRules) {
    if (!fired[rule]) {
      failures.push_back(std::string("rule ") + rule +
                         " never fires in any fixture");
    }
    if (!suppressed[rule]) {
      failures.push_back(std::string("rule ") + rule +
                         " is never suppressed in any fixture");
    }
  }

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "palu_lint selftest: %s\n", f.c_str());
    }
    std::fprintf(stderr, "palu_lint selftest: FAILED (%zu problem(s))\n",
                 failures.size());
    return 1;
  }
  std::printf("palu_lint selftest: %zu fixtures, %zu rules fired and "
              "suppressed\n",
              files.size(), std::size(kAllRules));
  return 0;
}

// ---------------------------------------------------------------- main

void print_rules() {
  static constexpr const char* kDescriptions[][2] = {
      {"failpoint-registry",
       "PALU_FAILPOINT(\"name\") must be registered in tools/failpoints.txt"},
      {"typed-error",
       "library code throws palu typed errors, not bare std exceptions"},
      {"determinism",
       "no std::rand / random_device / time(nullptr) / ::now() outside "
       "tools/timing_files.txt"},
      {"header-pragma-once", "headers carry #pragma once"},
      {"header-using-namespace", "no `using namespace` at header scope"},
      {"include-layering",
       "palu/ includes must follow the DAG declared in tools/layers.txt"},
      {"lock-guarded-by",
       "mutex-holding classes annotate data members with PALU_GUARDED_BY"},
      {"lock-discipline",
       "guarded members are accessed under the lock or PALU_REQUIRES"},
      {"hot-path-registration",
       "no Registry counter/gauge/histogram name-lookups in loop bodies"},
      {"stale-suppression",
       "every allow()/allow-file() marker must suppress a diagnostic"},
  };
  for (const auto& d : kDescriptions) {
    std::printf("%-24s %s\n", d[0], d[1]);
  }
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] PATH...\n"
      "       %s --selftest DIR --registry FILE --layers FILE\n"
      "\n"
      "options:\n"
      "  --registry FILE         failpoint registry (tools/failpoints.txt)\n"
      "  --timing-allowlist FILE files allowed to read clocks\n"
      "  --layers FILE           include-layer DAG (tools/layers.txt);\n"
      "                          enables the include-layering pass\n"
      "  --analyze               enable the analysis passes (lock\n"
      "                          discipline, hot-path registration,\n"
      "                          stale-suppression)\n"
      "  --dump-include-graph    print the observed include graph as\n"
      "                          Graphviz DOT on stdout (needs --layers)\n"
      "  --no-stale-check        skip stale-entry checks for registries\n"
      "  --selftest DIR          run the fixture selftest over DIR\n"
      "  --list-rules            print the rule catalog\n",
      argv0, argv0);
  return 2;
}

int run_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "palu_lint: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--registry") {
      const char* v = value("--registry");
      if (v == nullptr) return 2;
      opt.registry_path = v;
    } else if (arg == "--timing-allowlist") {
      const char* v = value("--timing-allowlist");
      if (v == nullptr) return 2;
      opt.timing_path = v;
    } else if (arg == "--layers") {
      const char* v = value("--layers");
      if (v == nullptr) return 2;
      opt.layers_path = v;
    } else if (arg == "--selftest") {
      const char* v = value("--selftest");
      if (v == nullptr) return 2;
      opt.selftest_dir = v;
    } else if (arg == "--analyze") {
      opt.analyze = true;
    } else if (arg == "--dump-include-graph") {
      opt.dump_graph = true;
    } else if (arg == "--no-stale-check") {
      opt.stale_check = false;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "palu_lint: unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      opt.roots.push_back(arg);
    }
  }
  if (opt.list_rules) {
    print_rules();
    return 0;
  }
  if (!opt.selftest_dir.empty()) return run_selftest(opt);
  if (opt.dump_graph && opt.layers_path.empty()) {
    std::fprintf(stderr,
                 "palu_lint: --dump-include-graph requires --layers\n");
    return 2;
  }
  if (opt.roots.empty()) return usage(argv[0]);
  return run_lint(opt);
}

}  // namespace
}  // namespace palu::analyze

int main(int argc, char** argv) {
  return palu::analyze::run_main(argc, argv);
}
