// Exporters for RegistrySnapshot: JSON for the BENCH/tooling pipeline,
// Prometheus exposition text for scrape endpoints, and a validator that
// re-parses the exposition format so CI can round-trip what we emit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace palu::obs {

struct RegistrySnapshot;

/// Serializes the snapshot as a single JSON object:
/// {"counters": [...], "gauges": [...], "histograms": [...]}, each sample
/// carrying name, labels, and value(s).  Output is deterministic (sorted
/// by name + labels, integers only — no floats to round).
void write_json(std::ostream& os, const RegistrySnapshot& snapshot);

/// Serializes the snapshot in the Prometheus text exposition format
/// (version 0.0.4): # HELP / # TYPE headers, cumulative `_bucket{le=...}`
/// series ending at `+Inf`, `_sum` and `_count` for histograms.
void write_prometheus(std::ostream& os, const RegistrySnapshot& snapshot);

/// Re-parses Prometheus exposition text and returns every format
/// violation found (empty vector = valid).  Checks: metric/label name
/// grammar, TYPE declared before samples, counter/gauge sample shape,
/// histogram bucket cumulativity, mandatory +Inf bucket, and
/// `_count` == `+Inf` bucket value.  Used by the ctest round-trip and
/// `palu_tool check-metrics`.
std::vector<std::string> validate_prometheus(std::istream& is);

}  // namespace palu::obs
