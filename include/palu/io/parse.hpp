// Hardened integer parsing shared by every text ingest path.
//
// std::strtoull-style parsing silently wraps negative input ("-1" becomes
// 2^64−1) and its overflow signalling is easy to drop on the floor.  Every
// id/count token in the io readers goes through parse_u64 instead, which
// distinguishes the three failure modes so error messages can name the
// offending token precisely.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

#include "palu/common/result.hpp"

namespace palu::io {

/// Parses a full token as an unsigned 64-bit integer.  Failures carry a
/// specific diagnostic: empty token, negative value, uint64 overflow, or
/// not-an-unsigned-integer (trailing junk counts as the latter).
inline Result<std::uint64_t> parse_u64(std::string_view token) {
  if (token.empty()) {
    return Result<std::uint64_t>::failure("empty token");
  }
  if (token.front() == '-') {
    return Result<std::uint64_t>::failure("token '" + std::string(token) +
                                          "' is negative");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Result<std::uint64_t>::failure(
        "token '" + std::string(token) + "' overflows uint64");
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return Result<std::uint64_t>::failure(
        "token '" + std::string(token) + "' is not an unsigned integer");
  }
  return value;
}

}  // namespace palu::io
