// Window-size invariance explorer: hold (λ, C, L, U, α) fixed, sweep the
// window parameter p, and watch which measured quantities move (μ = λp,
// visibility) and which stay put (α) — the central PALU claim that only p
// changes with window size.
//
//   build/examples/model_explorer [node_scale]
#include <cstdio>
#include <cstdlib>

#include "palu/palu.hpp"

int main(int argc, char** argv) {
  using namespace palu;
  const NodeId n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300000;

  const double lambda = 6.0;
  const double core_frac = 0.35, leaf_frac = 0.2, alpha = 2.3;
  std::printf("fixed underlying: lambda=%.1f C=%.2f L=%.2f alpha=%.2f\n\n",
              lambda, core_frac, leaf_frac, alpha);
  std::printf("%6s  %10s  %10s  %10s  %10s  %10s\n", "p", "alpha_hat",
              "mu_hat", "mu_theory", "visible", "D(1)");

  for (const double p : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const core::PaluParams params =
        core::PaluParams::solve_hubs(lambda, core_frac, leaf_frac, alpha, p);
    Rng rng(1234);  // same seed: the same underlying network family
    const auto h = core::sample_observed_degrees(params, n, rng);
    const auto dist = stats::EmpiricalDistribution::from_histogram(h);
    const auto fit = core::fit_palu(h);
    const auto k = core::simplified_constants(params);
    std::printf("%6.2f  %10.3f  %10.3f  %10.3f  %10llu  %10.4f\n", p,
                fit.alpha, fit.mu, k.mu,
                static_cast<unsigned long long>(dist.sample_size()),
                dist.mass_at_one());
  }

  std::printf("\npooled theory vs paper tail-slope claim (Section IV-A):\n");
  const core::PaluParams params =
      core::PaluParams::solve_hubs(lambda, core_frac, leaf_frac, alpha, 0.5);
  const auto pooled = core::pooled_theory(params, 22);
  std::printf("bin  d_i        D(d_i)\n");
  for (std::uint32_t i = 0; i < pooled.num_bins(); i += 3) {
    std::printf("%3u  %-9llu  %.3e\n", i,
                static_cast<unsigned long long>(
                    stats::LogBinned::bin_upper(i)),
                pooled[i]);
  }
  std::printf("predicted log-log tail slope: %.3f (= 1 - alpha, not "
              "-alpha)\n",
              core::pooled_tail_slope(params));
  return 0;
}
