// Fixture: one file can trip several rules at once; the selftest compares
// the full set, not just the first hit.
// palu-lint-expect: typed-error
// palu-lint-expect: determinism
#include <cstdlib>
#include <stdexcept>

int chaos() {
  if (std::rand() == 0) throw std::logic_error("unreachable");
  return 0;
}
