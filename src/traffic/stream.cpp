#include "palu/traffic/stream.hpp"

#include <cmath>

#include "palu/common/error.hpp"

namespace palu::traffic {

std::vector<double> make_edge_rates(const graph::Graph& g,
                                    const RateModel& model, Rng rng) {
  std::vector<double> rates(g.num_edges());
  switch (model.kind) {
    case RateModel::Kind::kUniform:
      for (double& r : rates) r = 1.0;
      break;
    case RateModel::Kind::kPareto: {
      PALU_CHECK(model.pareto_tail > 0.0,
                 "make_edge_rates: pareto_tail must be > 0");
      for (double& r : rates) {
        r = std::pow(rng.uniform_positive(), -1.0 / model.pareto_tail);
      }
      break;
    }
    case RateModel::Kind::kDegreeProduct: {
      const auto deg = g.degrees();
      const auto& edges = g.edges();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        rates[i] = static_cast<double>(deg[edges[i].u]) *
                   static_cast<double>(deg[edges[i].v]);
      }
      break;
    }
  }
  return rates;
}

SyntheticTrafficGenerator::SyntheticTrafficGenerator(
    const graph::Graph& underlying, const RateModel& rates, Rng rng,
    double forward_prob)
    : SyntheticTrafficGenerator(underlying,
                                make_edge_rates(underlying, rates, rng),
                                rng.fork(0x7a11), forward_prob) {}

SyntheticTrafficGenerator::SyntheticTrafficGenerator(
    const graph::Graph& underlying, std::vector<double> rates, Rng rng,
    double forward_prob)
    : edges_(underlying.edges()), rng_(rng), forward_prob_(forward_prob) {
  PALU_CHECK(!edges_.empty(),
             "SyntheticTrafficGenerator: underlying graph has no edges");
  PALU_CHECK(forward_prob >= 0.0 && forward_prob <= 1.0,
             "SyntheticTrafficGenerator: forward_prob out of [0, 1]");
  PALU_CHECK(rates.size() == edges_.size(),
             "SyntheticTrafficGenerator: one rate per edge required");
  rates_ = std::move(rates);
  double total = 0.0;
  for (double r : rates_) {
    PALU_CHECK(r >= 0.0, "SyntheticTrafficGenerator: negative rate");
    total += r;
  }
  PALU_CHECK(total > 0.0, "SyntheticTrafficGenerator: all rates zero");
  for (double& r : rates_) r /= total;
  sampler_.emplace(rates_);
}

Packet SyntheticTrafficGenerator::next() {
  const std::uint64_t e = (*sampler_)(rng_);
  const graph::Edge& edge = edges_[e];
  if (rng_.uniform() < forward_prob_) return Packet{edge.u, edge.v};
  return Packet{edge.v, edge.u};
}

void SyntheticTrafficGenerator::next_batch(std::span<Packet> out) {
  const rng::AliasSampler& sampler = *sampler_;
  for (Packet& p : out) {
    const std::uint64_t e = sampler(rng_);
    const graph::Edge& edge = edges_[e];
    p = rng_.uniform() < forward_prob_ ? Packet{edge.u, edge.v}
                                       : Packet{edge.v, edge.u};
  }
}

SparseCountMatrix SyntheticTrafficGenerator::window(Count n_valid) {
  SparseCountMatrix a;
  for (Count i = 0; i < n_valid; ++i) {
    const Packet p = next();
    a.add(p.src, p.dst);
  }
  return a;
}

std::vector<SparseCountMatrix> SyntheticTrafficGenerator::windows(
    Count n_valid, std::size_t count) {
  std::vector<SparseCountMatrix> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(window(n_valid));
  return out;
}

double SyntheticTrafficGenerator::expected_edge_visibility(
    Count n_valid) const {
  double acc = 0.0;
  const double n = static_cast<double>(n_valid);
  for (double r : rates_) {
    // P[edge seen] = 1 − (1 − r)^{N_V}.
    acc += -std::expm1(n * std::log1p(-r));
  }
  return acc / static_cast<double>(rates_.size());
}

double SyntheticTrafficGenerator::expected_unique_links(
    Count n_valid) const {
  const double n = static_cast<double>(n_valid);
  double acc = 0.0;
  for (const double r : rates_) {
    const double forward = forward_prob_ * r;
    const double backward = (1.0 - forward_prob_) * r;
    if (forward > 0.0) acc += -std::expm1(n * std::log1p(-forward));
    if (backward > 0.0) acc += -std::expm1(n * std::log1p(-backward));
  }
  return acc;
}

}  // namespace palu::traffic
