// Unit tests for distribution summaries (incl. Gini / top-share supernode
// concentration), the ZM maximum-likelihood fitter with standard errors,
// the histogram CSV round trip, and the exact pooled theory.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "palu/common/error.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/theory.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/io/csv.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/summary.hpp"

namespace palu {
namespace {

// ------------------------------------------------------------- summary

TEST(Summary, HandComputedMoments) {
  stats::DegreeHistogram h;
  h.add(1, 2);
  h.add(4, 1);
  h.add(10, 1);
  const auto s = stats::summarize(h);
  EXPECT_EQ(s.observations, 4u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  // variance: ((1-4)^2·2 + 0 + 36)/4 = (18+36)/4 = 13.5
  EXPECT_DOUBLE_EQ(s.variance, 13.5);
}

TEST(Summary, GiniExtremes) {
  // Perfect equality: everyone has the same degree → Gini ~ 0.
  stats::DegreeHistogram equal;
  equal.add(5, 1000);
  EXPECT_NEAR(stats::summarize(equal).gini, 0.0, 1e-3);
  // One supernode holds almost everything.
  stats::DegreeHistogram concentrated;
  concentrated.add(1, 999);
  concentrated.add(1000000, 1);
  EXPECT_GT(stats::summarize(concentrated).gini, 0.99);
}

TEST(Summary, GiniMatchesExpandedDefinition) {
  // Small case checked against the mean-absolute-difference definition:
  // G = Σ_i Σ_j |x_i − x_j| / (2 n² mean).
  stats::DegreeHistogram h;
  h.add(1, 2);
  h.add(3, 1);
  h.add(8, 1);
  const std::vector<double> xs = {1, 1, 3, 8};
  double mad = 0.0;
  for (const double a : xs) {
    for (const double b : xs) mad += std::abs(a - b);
  }
  const double mean = 13.0 / 4.0;
  const double expected = mad / (2.0 * 16.0 * mean);
  EXPECT_NEAR(stats::summarize(h).gini, expected, 1e-12);
}

TEST(Summary, QuantilesOnStepCdf) {
  stats::DegreeHistogram h;
  h.add(1, 50);
  h.add(2, 30);
  h.add(100, 20);
  EXPECT_EQ(stats::quantile(h, 0.0), 1u);
  EXPECT_EQ(stats::quantile(h, 0.5), 1u);
  EXPECT_EQ(stats::quantile(h, 0.6), 2u);
  EXPECT_EQ(stats::quantile(h, 0.8), 2u);
  EXPECT_EQ(stats::quantile(h, 0.81), 100u);
  EXPECT_EQ(stats::quantile(h, 1.0), 100u);
}

TEST(Summary, TopShareCapturesSupernodes) {
  // 1 supernode with degree 1000 among 999 degree-1 nodes: the top 0.1%
  // holds 1000/1999 of the mass.
  stats::DegreeHistogram h;
  h.add(1, 999);
  h.add(1000, 1);
  EXPECT_NEAR(stats::top_share(h, 0.001), 1000.0 / 1999.0, 1e-9);
  EXPECT_NEAR(stats::top_share(h, 1.0), 1.0, 1e-12);
  // Monotone in the fraction.
  EXPECT_LT(stats::top_share(h, 0.0005), stats::top_share(h, 0.5));
}

TEST(Summary, PaluNetworksAreMoreConcentratedThanPoisson) {
  const auto params = core::PaluParams::solve_hubs(2.0, 0.5, 0.2, 2.0,
                                                   1.0);
  Rng rng(1);
  const auto palu_h = core::sample_observed_degrees(params, 100000, rng);
  stats::DegreeHistogram poisson_h;
  for (int i = 0; i < 100000; ++i) {
    poisson_h.add(1 + rng::sample_poisson(rng, 3.0));
  }
  EXPECT_GT(stats::summarize(palu_h).gini,
            stats::summarize(poisson_h).gini + 0.15);
}

TEST(Summary, DegenerateInputsThrow) {
  stats::DegreeHistogram empty;
  EXPECT_THROW(stats::summarize(empty), InvalidArgument);
  EXPECT_THROW(stats::quantile(empty, 0.5), InvalidArgument);
  stats::DegreeHistogram h;
  h.add(1);
  EXPECT_THROW(stats::quantile(h, 1.5), InvalidArgument);
  EXPECT_THROW(stats::top_share(h, 0.0), InvalidArgument);
}

// -------------------------------------------------------------- ZM MLE

TEST(ZmMle, RecoversParametersWithCalibratedErrors) {
  Rng rng(2);
  const Degree dmax = 1u << 14;
  const fit::ZipfMandelbrot truth(2.0, 2.0, dmax);
  std::vector<double> weights(dmax);
  for (Degree d = 1; d <= dmax; ++d) weights[d - 1] = truth.pmf(d);
  rng::AliasSampler sampler(weights, 1);
  stats::DegreeHistogram h;
  for (int i = 0; i < 60000; ++i) h.add(sampler(rng));
  const auto mle = fit::fit_zipf_mandelbrot_mle(h, dmax);
  EXPECT_GT(mle.alpha_stderr, 0.0);
  EXPECT_GT(mle.delta_stderr, 0.0);
  EXPECT_NEAR(mle.alpha, 2.0, 5.0 * mle.alpha_stderr + 0.02);
  EXPECT_NEAR(mle.delta, 2.0, 5.0 * mle.delta_stderr + 0.05);
}

TEST(ZmMle, AgreesWithPooledLeastSquaresOnCleanData) {
  Rng rng(3);
  const Degree dmax = 1u << 12;
  const fit::ZipfMandelbrot truth(2.4, 0.8, dmax);
  std::vector<double> weights(dmax);
  for (Degree d = 1; d <= dmax; ++d) weights[d - 1] = truth.pmf(d);
  rng::AliasSampler sampler(weights, 1);
  stats::DegreeHistogram h;
  for (int i = 0; i < 80000; ++i) h.add(sampler(rng));
  const auto mle = fit::fit_zipf_mandelbrot_mle(h, dmax);
  const auto ls = fit::fit_zipf_mandelbrot(
      stats::LogBinned::from_histogram(h), dmax);
  EXPECT_NEAR(mle.alpha, ls.alpha, 0.15);
  EXPECT_NEAR(mle.delta, ls.delta, 0.4);
}

TEST(ZmMle, LikelihoodBeatsWrongParameters) {
  Rng rng(4);
  rng::BoundedZipfSampler zipf(2.0, 1u << 12);
  stats::DegreeHistogram h;
  for (int i = 0; i < 20000; ++i) h.add(zipf(rng));
  const auto mle = fit::fit_zipf_mandelbrot_mle(h);
  // Compare against a deliberately wrong (α, δ).
  const fit::ZipfMandelbrot wrong(3.0, 4.0, mle.dmax);
  double wrong_ll = 0.0;
  for (const auto& [d, c] : h.sorted()) {
    wrong_ll += static_cast<double>(c) * std::log(wrong.pmf(d));
  }
  EXPECT_GT(mle.log_likelihood, wrong_ll);
}

TEST(ZmMle, RejectsDegenerateInputs) {
  stats::DegreeHistogram empty;
  EXPECT_THROW(fit::fit_zipf_mandelbrot_mle(empty), Error);
  stats::DegreeHistogram h;
  h.add(100, 5);
  EXPECT_THROW(fit::fit_zipf_mandelbrot_mle(h, 50), InvalidArgument);
}

// ------------------------------------------------------- histogram CSV

TEST(HistogramCsv, RoundTrips) {
  stats::DegreeHistogram h;
  h.add(1, 10);
  h.add(7, 3);
  h.add(1u << 30, 1);
  std::stringstream buf;
  io::write_histogram_csv(buf, h);
  const auto parsed = io::read_histogram_csv(buf);
  EXPECT_EQ(parsed.total(), h.total());
  EXPECT_EQ(parsed.at(1), 10u);
  EXPECT_EQ(parsed.at(7), 3u);
  EXPECT_EQ(parsed.at(1u << 30), 1u);
}

TEST(HistogramCsv, AcceptsCommentsAndNoHeader) {
  std::stringstream buf("# comment\n5,2\n\n6,1\n");
  const auto h = io::read_histogram_csv(buf);
  EXPECT_EQ(h.at(5), 2u);
  EXPECT_EQ(h.at(6), 1u);
}

TEST(HistogramCsv, RejectsMalformedRows) {
  const auto bad = [](const char* text) {
    std::stringstream buf(text);
    EXPECT_THROW(io::read_histogram_csv(buf), DataError) << text;
  };
  bad("5\n");
  bad("a,b\n");
  bad("5,\n");
  bad(",5\n");
  bad("5,2,3\n");
}

// ------------------------------------------------- exact pooled theory

TEST(PooledTheoryExact, SelfConsistentAndTighterThanPaperForm) {
  const auto params = core::PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2,
                                                   0.6);
  const Degree core_dmax = 1u << 12;
  const auto exact = core::pooled_theory_exact(params, 10, core_dmax);
  // Bin 0 equals the exact degree-1 share.
  EXPECT_NEAR(exact[0], core::degree_share_exact(params, 1, core_dmax),
              1e-12);
  // Masses are a valid sub-distribution.
  double total = 0.0;
  for (std::size_t i = 0; i < exact.num_bins(); ++i) {
    EXPECT_GE(exact[i], 0.0);
    total += exact[i];
  }
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);  // 10 bins cover almost all mass
}

TEST(PooledTheoryExact, ValidatesBinCount) {
  const auto params = core::PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2,
                                                   0.6);
  EXPECT_THROW(core::pooled_theory_exact(params, 0), InvalidArgument);
  EXPECT_THROW(core::pooled_theory_exact(params, 20), InvalidArgument);
}

}  // namespace
}  // namespace palu
