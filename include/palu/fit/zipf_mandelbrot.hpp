// The modified Zipf–Mandelbrot model of Section II-B and its fitter.
//
// Unlike the linguistic ZM law (where d is a rank), the paper re-reads d as
// a measured network quantity and normalizes over d = 1..dmax:
//
//     p(d; α, δ) = (d + δ)^{-α} / Σ_{d'=1}^{dmax} (d' + δ)^{-α}
//
// The offset δ controls the small-d behaviour (most importantly d = 1,
// the highest-probability value in streaming data) while α controls the
// tail.  Fitting minimizes the difference between pooled differential
// cumulative distributions D(d_i) (Section II-B, Fig 3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::fit {

class ZipfMandelbrot {
 public:
  /// Requires alpha > 0, delta > -1, dmax >= 1.
  ZipfMandelbrot(double alpha, double delta, Degree dmax);

  double alpha() const noexcept { return alpha_; }
  double delta() const noexcept { return delta_; }
  Degree dmax() const noexcept { return dmax_; }

  /// Unnormalized ρ(d) = (d + δ)^{-α}.
  double unnormalized(double d) const;

  /// Gradient ∂ρ/∂δ = −α·ρ(d; α+1, δ) (as derived in the paper).
  double unnormalized_delta_gradient(double d) const;

  /// Normalized pmf p(d); requires 1 <= d <= dmax.
  double pmf(Degree d) const;

  /// Cumulative P(d) = Σ_{d'<=d} p(d'); clamps d to [1, dmax].
  double cdf(Degree d) const;

  /// Pooled differential cumulative D(d_i) for bins i = 0..bin(dmax),
  /// computed from exact partial sums (no per-degree loop).
  stats::LogBinned pooled() const;

  /// O(1)-per-draw sampler over the model's support (alias method built
  /// once from the pmf; construction is O(dmax)).
  rng::AliasSampler sampler() const;

 private:
  double alpha_;
  double delta_;
  Degree dmax_;
  double normalizer_;
};

struct ZmFitOptions {
  double alpha_init = 2.0;
  double delta_init = 0.5;
  /// Optional per-bin σ weights (weight = 1/max(σ, floor)); empty = equal.
  std::vector<double> bin_sigma;
  double sigma_floor = 1e-6;
};

struct ZmFitResult {
  double alpha = 0.0;
  double delta = 0.0;
  Degree dmax = 1;
  double objective = 0.0;  // weighted SSE over pooled bins
  bool converged = false;
};

/// Fits (α, δ) so the model's pooled D(d_i) matches `target` in weighted
/// least squares, exactly the paper's "minimizing the differences between
/// the observed differential cumulative distributions".  `dmax` fixes the
/// model support (use the measured d_max, Eq. 1).
ZmFitResult fit_zipf_mandelbrot(const stats::LogBinned& target, Degree dmax,
                                const ZmFitOptions& opts = {});

/// Maximum-likelihood (α, δ) with observed-information standard errors.
struct ZmMleResult {
  double alpha = 0.0;
  double delta = 0.0;
  double alpha_stderr = 0.0;
  double delta_stderr = 0.0;
  double log_likelihood = 0.0;
  Degree dmax = 1;
};

/// MLE over the un-pooled histogram (each observation contributes
/// log p(d; α, δ)).  Standard errors come from inverting the numeric
/// observed-information matrix; they are 0 when the Hessian is not
/// positive definite at the optimum (boundary solutions like δ → −1).
/// `dmax` = 0 uses the histogram maximum.
ZmMleResult fit_zipf_mandelbrot_mle(const stats::DegreeHistogram& h,
                                    Degree dmax = 0);

}  // namespace palu::fit
