#include "palu/fit/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "palu/common/error.hpp"

namespace palu::fit {

double kolmogorov_survival(double lambda) {
  PALU_CHECK(lambda >= 0.0, "kolmogorov_survival: requires lambda >= 0");
  if (lambda < 1e-6) return 1.0;
  // The alternating series converges fast for λ >~ 0.5; for smaller λ the
  // Jacobi-theta dual form converges fast instead.
  if (lambda >= 0.5) {
    double sum = 0.0;
    for (int k = 1; k <= 100; ++k) {
      const double term = std::exp(-2.0 * k * k * lambda * lambda);
      sum += (k % 2 == 1 ? term : -term);
      if (term < 1e-16) break;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
  }
  // Q(λ) = 1 − (√(2π)/λ)·Σ_{k≥1} e^{−(2k−1)²π²/(8λ²)}.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double e = (2.0 * k - 1.0) * std::numbers::pi;
    const double term = std::exp(-e * e / (8.0 * lambda * lambda));
    sum += term;
    if (term < 1e-16) break;
  }
  return std::clamp(
      1.0 - std::sqrt(2.0 * std::numbers::pi) / lambda * sum, 0.0, 1.0);
}

KsTestResult ks_test_two_sample(const stats::DegreeHistogram& a,
                                const stats::DegreeHistogram& b) {
  const auto da = stats::EmpiricalDistribution::from_histogram(a);
  const auto db = stats::EmpiricalDistribution::from_histogram(b);
  // Sup over the union of supports of |F_a − F_b|.
  double worst = 0.0;
  const auto& sa = da.support();
  const auto& sb = db.support();
  std::size_t ia = 0, ib = 0;
  while (ia < sa.size() || ib < sb.size()) {
    Degree d;
    if (ib >= sb.size() || (ia < sa.size() && sa[ia] <= sb[ib])) {
      d = sa[ia];
    } else {
      d = sb[ib];
    }
    while (ia < sa.size() && sa[ia] <= d) ++ia;
    while (ib < sb.size() && sb[ib] <= d) ++ib;
    worst = std::max(worst,
                     std::abs(da.cumulative_at(d) - db.cumulative_at(d)));
  }
  KsTestResult out;
  out.statistic = worst;
  const double na = static_cast<double>(da.sample_size());
  const double nb = static_cast<double>(db.sample_size());
  out.effective_n = na * nb / (na + nb);
  out.p_value =
      kolmogorov_survival(std::sqrt(out.effective_n) * out.statistic);
  return out;
}

}  // namespace palu::fit
