#include "palu/cli/args.hpp"

#include <charconv>
#include <string_view>

#include "palu/common/error.hpp"

namespace palu::cli {

Args Args::parse(int argc, const char* const* argv, int begin) {
  Args out;
  for (int i = begin; i < argc; ++i) {
    std::string_view token = argv[i];
    if (token.size() < 3 || token.substr(0, 2) != "--") {
      throw InvalidArgument("Args: expected --option, got '" +
                            std::string(token) + "'");
    }
    token.remove_prefix(2);
    const std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      out.values_[std::string(token.substr(0, eq))] =
          std::string(token.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not an option; bare flag
    // otherwise.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      out.values_[std::string(token)] = std::string(argv[i + 1]);
      ++i;
    } else {
      out.values_[std::string(token)] = std::nullopt;
    }
  }
  return out;
}

bool Args::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  PALU_CHECK(it->second.has_value(),
             "Args: option --" + name + " requires a value");
  return *it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  PALU_CHECK(it->second.has_value(),
             "Args: option --" + name + " requires a value");
  const std::string& text = *it->second;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  PALU_CHECK(ec == std::errc{} && ptr == text.data() + text.size(),
             "Args: option --" + name + " is not an integer: " + text);
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  PALU_CHECK(it->second.has_value(),
             "Args: option --" + name + " requires a value");
  const std::string& text = *it->second;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument("Args: option --" + name +
                          " is not a number: " + text);
  }
  PALU_CHECK(consumed == text.size(),
             "Args: option --" + name + " is not a number: " + text);
  return value;
}

bool Args::get_flag(const std::string& name) const { return has(name); }

std::vector<std::string> Args::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

}  // namespace palu::cli
