// Fixture: a line-level suppression on the preceding line silences the
// registry rule.
// palu-lint-expect-clean
#include "palu/common/failpoint.hpp"

void poke() {
  // palu-lint: allow(failpoint-registry)
  PALU_FAILPOINT("lint.fixture.suppressed");
}
