// Count-space synthesis (PR 5): distributional equivalence to the packet
// paths, exact structural invariants, and pipeline semantics.
//
// The counts path draws each window whole (Multinomial over edge rates +
// one direction Binomial per active pair), so it consumes RNG differently
// from the packet paths and can never be byte-identical.  Its contract is
// distributional: for every quantity the per-bin ensemble mean across
// many windows must agree with the packet path within CLT tolerance, and
// the structural invariants (exact packet mass, unique pairs, merged
// duplicates/self-loops) must hold exactly.  See DESIGN.md §5e.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "palu/graph/generators.hpp"
#include "palu/graph/graph.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_accumulator.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

constexpr std::array<traffic::Quantity, 6> kEveryQuantity = {
    traffic::Quantity::kSourcePackets,
    traffic::Quantity::kSourceFanOut,
    traffic::Quantity::kLinkPackets,
    traffic::Quantity::kDestinationFanIn,
    traffic::Quantity::kDestinationPackets,
    traffic::Quantity::kUndirectedDegree};

traffic::SweepOptions counts_options() {
  traffic::SweepOptions opts;
  opts.synthesis = traffic::SynthesisMode::kMultinomial;
  return opts;
}

// Per-bin CLT comparison of two window ensembles.  Bin counts may differ
// by a bin or two (d_max is itself random); missing bins carry mass 0.
void expect_distributionally_equal(const stats::BinnedEnsemble& a,
                                   const stats::BinnedEnsemble& b,
                                   std::size_t windows,
                                   const std::string& context) {
  const auto mean_a = a.mean(), mean_b = b.mean();
  const auto sd_a = a.stddev(), sd_b = b.stddev();
  const std::size_t bins = std::max(mean_a.size(), mean_b.size());
  const double w = static_cast<double>(windows);
  for (std::size_t i = 0; i < bins; ++i) {
    const double ma = i < mean_a.size() ? mean_a[i] : 0.0;
    const double mb = i < mean_b.size() ? mean_b[i] : 0.0;
    const double va = i < sd_a.size() ? sd_a[i] * sd_a[i] : 0.0;
    const double vb = i < sd_b.size() ? sd_b[i] * sd_b[i] : 0.0;
    // 6 standard errors of the difference of means, plus an absolute
    // floor for bins whose sample σ underestimates (rare tail bins).
    const double tol = 6.0 * std::sqrt((va + vb) / w) + 0.01;
    EXPECT_NEAR(ma, mb, tol) << context << " bin " << i;
  }
}

TEST(SweepCounts, DistributionallyEquivalentToPacketPath) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  constexpr std::size_t kWindows = 40;  // >= 32 per the acceptance bar
  for (const auto q : kEveryQuantity) {
    const auto packet =
        traffic::sweep_windows(g, traffic::RateModel{}, 5000, kWindows, q,
                               /*seed=*/17, pool, traffic::SweepOptions{});
    const auto counts =
        traffic::sweep_windows(g, traffic::RateModel{}, 5000, kWindows, q,
                               /*seed=*/17, pool, counts_options());
    const std::string context(traffic::quantity_name(q));
    ASSERT_EQ(counts.windows, kWindows) << context;
    expect_distributionally_equal(packet.ensemble, counts.ensemble,
                                  kWindows, context);
    // Merged totals are whole-ensemble aggregates of the same law; allow
    // a generous CLT band (they are sums over ~kWindows × support draws).
    const double mt_packet = static_cast<double>(packet.merged.total());
    const double mt_counts = static_cast<double>(counts.merged.total());
    EXPECT_NEAR(mt_counts / mt_packet, 1.0, 0.05) << context;
  }
}

TEST(SweepCounts, WindowConservesMassAndEmitsFullSupport) {
  Rng gen_rng(11);
  const auto g = graph::erdos_renyi(gen_rng, 300, 0.05);
  traffic::SyntheticTrafficGenerator gen(g, traffic::RateModel{}, Rng(5));
  std::vector<traffic::EdgePacketCounts> pairs;
  std::vector<std::pair<NodeId, NodeId>> first_order;
  for (const Count n : {Count{0}, Count{1}, Count{997}, Count{100000}}) {
    gen.next_window_counts(n, pairs);
    // The generator emits its whole merged-pair support every window —
    // zero rows included, in one fixed order — so downstream loop sizes
    // depend only on the graph, never on N_V.  This ER graph has no
    // duplicate edges, so the support is exactly the edge set.
    ASSERT_EQ(pairs.size(), g.num_edges()) << "n=" << n;
    if (first_order.empty()) {
      for (const auto& pc : pairs) first_order.emplace_back(pc.u, pc.v);
    } else {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_EQ(pairs[i].u, first_order[i].first) << "n=" << n;
        ASSERT_EQ(pairs[i].v, first_order[i].second) << "n=" << n;
      }
    }
    Count total = 0;
    for (const auto& pc : pairs) total += pc.forward + pc.backward;
    EXPECT_EQ(total, n) << "n=" << n;
    // No unordered pair may repeat: the support merge must be complete.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      for (std::size_t j = i + 1; j < pairs.size(); ++j) {
        const bool same =
            (pairs[i].u == pairs[j].u && pairs[i].v == pairs[j].v) ||
            (pairs[i].u == pairs[j].v && pairs[i].v == pairs[j].u);
        ASSERT_FALSE(same) << "duplicate pair at " << i << "," << j;
      }
    }
    if (n == 0) {
      for (const auto& pc : pairs) {
        ASSERT_EQ(pc.forward + pc.backward, 0u);
      }
    }
  }
}

TEST(SweepCounts, MergesParallelEdgesAndSelfLoops) {
  // Graph::add_edge permits parallel edges and self-loops; the counts
  // support must merge them into single pairs (with summed weight) and
  // route self-loop packets entirely into `forward`.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // mirror orientation of the same unordered pair
  g.add_edge(0, 1);  // parallel duplicate
  g.add_edge(2, 2);  // self-loop
  g.add_edge(2, 3);
  traffic::SyntheticTrafficGenerator gen(
      g, std::vector<double>{1.0, 1.0, 1.0, 1.0, 1.0}, Rng(9));
  std::vector<traffic::EdgePacketCounts> pairs;
  double mean_01 = 0.0, mean_22 = 0.0;
  constexpr int kWindows = 200;
  constexpr Count kN = 1000;
  for (int w = 0; w < kWindows; ++w) {
    gen.next_window_counts(kN, pairs);
    ASSERT_LE(pairs.size(), 3u);  // {0,1}, {2,2}, {2,3} at most
    for (const auto& pc : pairs) {
      const bool is_01 = (pc.u == 0 && pc.v == 1) ||
                         (pc.u == 1 && pc.v == 0);
      const bool is_22 = pc.u == 2 && pc.v == 2;
      const bool is_23 = (pc.u == 2 && pc.v == 3) ||
                         (pc.u == 3 && pc.v == 2);
      ASSERT_TRUE(is_01 || is_22 || is_23);
      if (is_01) mean_01 += static_cast<double>(pc.forward + pc.backward);
      if (is_22) {
        EXPECT_EQ(pc.backward, 0u);  // self-pairs are all-forward
        mean_22 += static_cast<double>(pc.forward);
      }
    }
  }
  mean_01 /= kWindows;
  mean_22 /= kWindows;
  // The merged {0,1} pair carries 3 of 5 rate units, {2,2} carries 1.
  EXPECT_NEAR(mean_01, 0.6 * kN, 6.0 * std::sqrt(0.6 * 0.4 * kN / 200.0));
  EXPECT_NEAR(mean_22, 0.2 * kN, 6.0 * std::sqrt(0.2 * 0.8 * kN / 200.0));
}

TEST(SweepCounts, PerEdgeCountMomentsMatchRates) {
  Rng gen_rng(13);
  const auto g = graph::erdos_renyi(gen_rng, 120, 0.1);
  traffic::SyntheticTrafficGenerator gen(g, traffic::RateModel{}, Rng(23));
  const auto& rates = gen.rates();
  ASSERT_EQ(rates.size(), g.num_edges());
  // The hottest edge's mean count must track n·rate (Multinomial mean).
  std::size_t hot = 0;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if (rates[i] > rates[hot]) hot = i;
  }
  const NodeId hot_u = g.edges()[hot].u, hot_v = g.edges()[hot].v;
  constexpr Count kN = 20000;
  constexpr int kWindows = 64;
  double mean_links = 0.0, mean_hot = 0.0;
  std::vector<traffic::EdgePacketCounts> pairs;
  for (int w = 0; w < kWindows; ++w) {
    gen.next_window_counts(kN, pairs);
    for (const auto& pc : pairs) {
      mean_links += static_cast<double>(pc.forward > 0) +
                    static_cast<double>(pc.backward > 0);
      if ((pc.u == hot_u && pc.v == hot_v) ||
          (pc.u == hot_v && pc.v == hot_u)) {
        mean_hot += static_cast<double>(pc.forward + pc.backward);
      }
    }
  }
  mean_links /= kWindows;
  mean_hot /= kWindows;
  // Mean unique directed links across windows vs the closed form; the
  // link count is a sum of (negatively correlated) Bernoullis, so its
  // variance is at most the independent-case bound Σ p(1−p) <= E.
  const double expected = gen.expected_unique_links(kN);
  EXPECT_NEAR(mean_links, expected,
              6.0 * std::sqrt(expected / kWindows) + 1.0);
  const double hot_mean = static_cast<double>(kN) * rates[hot];
  const double hot_sd =
      std::sqrt(hot_mean * (1.0 - rates[hot]) / kWindows);
  EXPECT_NEAR(mean_hot, hot_mean, 6.0 * hot_sd + 1.0);
}

TEST(SweepCounts, RateNormalizationSurvivesHeavyTails) {
  // Regression (PR 5): the generator normalized rates with a naive
  // left-to-right sum, so one giant Pareto rate absorbed the small rates'
  // mass (1e16 + 1 == 1e16 in double) and every small edge was under-
  // weighted.  Compensated summation keeps the total exact to one ulp.
  graph::Graph g(101);
  std::vector<double> rates;
  rates.push_back(1e16);
  g.add_edge(0, 1);
  for (NodeId i = 1; i <= 99; ++i) {
    g.add_edge(0, i + 1);
    rates.push_back(1.0);
  }
  traffic::SyntheticTrafficGenerator gen(g, rates, Rng(3));
  // A naive left-to-right sum returns exactly 1e16 (each +1.0 is half an
  // ulp and lost to round-to-even); the compensated sum returns the correctly
  // rounded fl(1e16 + 99), same as this one-step double expression.
  const double true_total = 1e16 + 99.0;
  const auto& normalized = gen.rates();
  ASSERT_EQ(normalized.size(), 100u);
  EXPECT_DOUBLE_EQ(normalized[0], 1e16 / true_total);
  for (std::size_t i = 1; i < normalized.size(); ++i) {
    ASSERT_DOUBLE_EQ(normalized[i], 1.0 / true_total) << "edge " << i;
  }
  double sum = 0.0;
  for (const double r : normalized) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SweepCounts, ExpectedQuantitiesAreMemoizedConsistently) {
  Rng gen_rng(19);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.05);
  const traffic::SyntheticTrafficGenerator gen(g, traffic::RateModel{},
                                               Rng(31));
  // Interleaved repeat queries must return bit-identical values (the memo
  // stores the first computation; a wrong key lookup would show up here).
  const double v1 = gen.expected_edge_visibility(1000);
  const double v2 = gen.expected_edge_visibility(50000);
  const double l1 = gen.expected_unique_links(1000);
  const double l2 = gen.expected_unique_links(50000);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(gen.expected_edge_visibility(1000), v1);
    EXPECT_EQ(gen.expected_edge_visibility(50000), v2);
    EXPECT_EQ(gen.expected_unique_links(1000), l1);
    EXPECT_EQ(gen.expected_unique_links(50000), l2);
  }
  EXPECT_GT(v2, v1);  // larger windows see more of every edge
  EXPECT_GT(l2, l1);
  EXPECT_GT(v1, 0.0);
  EXPECT_LE(v2, 1.0);
}

TEST(SweepCounts, AccumulatorCountsModeMatchesHashReplay) {
  // ingest_counts (dense marginals) vs the same records replayed through
  // add(): all six histograms, nnz, total, and at() must agree exactly.
  Rng rng(41);
  std::vector<traffic::EdgePacketCounts> pairs;
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = u; v < 50; v += 3) {
      const Count f = rng.uniform_index(5);
      const Count b = u == v ? 0 : rng.uniform_index(5);
      // Zero rows included: the generator emits its full support, so the
      // accumulator must treat forward == backward == 0 as a no-op.
      pairs.push_back({u, v, f, b});
    }
  }
  traffic::WindowAccumulator dense;
  dense.begin_window();
  dense.ingest_counts(pairs);
  traffic::WindowAccumulator hashed;
  hashed.begin_window();
  for (const auto& pc : pairs) {
    hashed.add(pc.u, pc.v, pc.forward);
    hashed.add(pc.v, pc.u, pc.backward);
  }
  EXPECT_EQ(dense.total(), hashed.total());
  EXPECT_EQ(dense.nnz(), hashed.nnz());
  EXPECT_EQ(dense.at(3, 6), hashed.at(3, 6));
  EXPECT_EQ(dense.at(6, 3), hashed.at(6, 3));
  EXPECT_EQ(dense.at(7, 7), hashed.at(7, 7));
  for (const auto q : kEveryQuantity) {
    const auto a = dense.histogram(q);
    const auto b = hashed.histogram(q);
    EXPECT_EQ(a.sorted(), b.sorted()) << traffic::quantity_name(q);
    EXPECT_EQ(a.total(), b.total()) << traffic::quantity_name(q);
  }
  // The accumulator must come back cleanly to packet mode.
  dense.begin_window();
  dense.add(1, 2, 4);
  EXPECT_EQ(dense.total(), 4u);
  EXPECT_EQ(dense.nnz(), 1u);
  EXPECT_EQ(dense.at(1, 2), 4u);
}

TEST(SweepCounts, SparseNodeIdsFallBackToHashTables) {
  // Ids far beyond the pair count make dense arrays wasteful; the replay
  // fallback must keep every result exact.
  std::vector<traffic::EdgePacketCounts> pairs;
  pairs.push_back({1u << 30, (1u << 30) + 1, 5, 2});
  pairs.push_back({1u << 20, 1u << 30, 3, 0});
  traffic::WindowAccumulator acc;
  acc.begin_window();
  acc.ingest_counts(pairs);
  EXPECT_EQ(acc.total(), 10u);
  EXPECT_EQ(acc.nnz(), 3u);
  EXPECT_EQ(acc.at(1u << 30, (1u << 30) + 1), 5u);
  EXPECT_EQ(acc.at((1u << 30) + 1, 1u << 30), 2u);
  EXPECT_EQ(acc.at(1u << 20, 1u << 30), 3u);
  const auto h = acc.histogram(traffic::Quantity::kUndirectedDegree);
  EXPECT_EQ(h.total(), 3u);  // three distinct endpoints, two pairs
}

TEST(SweepCounts, FailpointHonoursFailureBudget) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.03);
  ThreadPool pool(1);  // FIFO pool: windows execute in index order
  {
    testing::FailpointGuard guard;
    failpoints::arm("traffic.window_counts", /*fires=*/1, /*skip=*/2);
    auto opts = counts_options();
    try {
      traffic::sweep_windows(g, traffic::RateModel{}, 1000, 6,
                             traffic::Quantity::kSourceFanOut, 42, pool,
                             opts);
      FAIL() << "strict counts sweep must rethrow the window failure";
    } catch (const traffic::SweepWindowError& e) {
      EXPECT_EQ(e.window(), 2u);
    }
  }
  {
    testing::FailpointGuard guard;
    failpoints::arm("traffic.window_counts", /*fires=*/2, /*skip=*/0);
    auto opts = counts_options();
    opts.max_failed_windows = 2;
    const auto sweep = traffic::sweep_windows(
        g, traffic::RateModel{}, 1000, 8,
        traffic::Quantity::kSourceFanOut, 42, pool, opts);
    EXPECT_EQ(sweep.failures.size(), 2u);
    EXPECT_EQ(sweep.windows, 6u);
  }
}

TEST(SweepCounts, StageMetricsCarryCountsPathLabel) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.03);
  ThreadPool pool(2);
  obs::Registry registry;
  auto opts = counts_options();
  opts.metrics = &registry;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 5000, 8,
      traffic::Quantity::kUndirectedDegree, 3, pool, opts);
  EXPECT_EQ(sweep.windows, 8u);
  EXPECT_GT(sweep.timings.sampling_cpu_ns, 0u);
  EXPECT_GT(sweep.timings.accumulation_cpu_ns, 0u);
  EXPECT_GT(sweep.timings.binning_cpu_ns, 0u);
  const auto snap = registry.snapshot();
  bool saw_counts_label = false;
  for (const auto& h : snap.histograms) {
    if (h.name != obs::names::kSweepStageDurationNs) continue;
    for (const auto& [key, value] : h.labels) {
      if (key == "path") {
        EXPECT_EQ(value, "counts");
        saw_counts_label = true;
      }
    }
  }
  EXPECT_TRUE(saw_counts_label);
}

}  // namespace
}  // namespace palu
