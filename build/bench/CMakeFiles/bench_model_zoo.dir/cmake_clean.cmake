file(REMOVE_RECURSE
  "CMakeFiles/bench_model_zoo.dir/bench_model_zoo.cpp.o"
  "CMakeFiles/bench_model_zoo.dir/bench_model_zoo.cpp.o.d"
  "bench_model_zoo"
  "bench_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
