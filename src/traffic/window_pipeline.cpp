#include "palu/traffic/window_pipeline.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/parallel/parallel_for.hpp"

namespace palu::traffic {

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool,
                                const SweepOptions& opts) {
  PALU_CHECK(num_windows >= 1, "sweep_windows: need at least one window");
  PALU_CHECK(n_valid >= 1, "sweep_windows: need at least one packet");

  // Per-window slots: exactly one of histogram / error is set afterwards;
  // neither set means the window was skipped (cancellation or timeout).
  std::vector<std::optional<stats::DegreeHistogram>> histograms(
      num_windows);
  std::vector<std::optional<std::string>> errors(num_windows);
  std::atomic<bool> stop_new_windows{false};

  const bool has_deadline = opts.timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + opts.timeout;
  const auto should_stop = [&]() {
    if (stop_new_windows.load(std::memory_order_relaxed)) return true;
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  };

  const Rng base(seed);
  // One shared traffic matrix: every window sees the same long-term
  // per-edge rates; only the packet draws differ between windows.
  const std::vector<double> shared_rates =
      make_edge_rates(underlying, rates, base.fork(0));
  parallel_for(pool, 0, num_windows, /*grain=*/1, [&](IndexRange range) {
    for (std::size_t t = range.begin; t < range.end; ++t) {
      if (should_stop()) return;  // leave the remaining slots unset
      try {
        PALU_FAILPOINT("traffic.sweep_window");
        SyntheticTrafficGenerator stream(underlying, shared_rates,
                                         base.fork(t + 1));
        histograms[t] =
            quantity_histogram(stream.window(n_valid), quantity);
      } catch (const std::exception& e) {
        errors[t] = e.what();
        if (opts.max_failed_windows == 0) {
          // Strict mode: no point producing more windows for a sweep
          // that is already lost.
          stop_new_windows.store(true, std::memory_order_relaxed);
        }
      }
    }
  });

  WindowSweepResult out;
  for (std::size_t t = 0; t < num_windows; ++t) {
    if (errors[t]) {
      if (opts.max_failed_windows == 0) {
        throw SweepWindowError(t, *errors[t]);
      }
      out.failures.push_back(WindowFailure{t, std::move(*errors[t])});
      continue;
    }
    if (!histograms[t]) {
      ++out.windows_skipped;
      continue;
    }
    const stats::DegreeHistogram& h = *histograms[t];
    out.max_value = std::max(out.max_value, h.max_degree());
    out.ensemble.add(stats::LogBinned::from_histogram(h));
    out.merged.merge(h);
    ++out.windows;
  }
  out.cancelled = out.windows_skipped > 0;
  if (out.failures.size() > opts.max_failed_windows) {
    const WindowFailure& first = out.failures.front();
    throw SweepWindowError(
        first.window,
        first.error + " (" + std::to_string(out.failures.size()) +
            " windows failed, budget " +
            std::to_string(opts.max_failed_windows) + ")");
  }
  return out;
}

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool) {
  return sweep_windows(underlying, rates, n_valid, num_windows, quantity,
                       seed, pool, SweepOptions{});
}

}  // namespace palu::traffic
