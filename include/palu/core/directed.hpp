// Directed observation of PALU networks.
//
// Section III keeps the model undirected, asserting that "using a directed
// model has a small impact on the overall degree distribution analysis".
// This module makes that claim checkable: the observed network's retained
// links are oriented — reciprocally with probability `reciprocity`
// (two-way conversations), otherwise a fair coin picks the direction — and
// the in-/out-degree histograms are returned for comparison with the
// undirected law.
#pragma once

#include <vector>

#include "palu/common/types.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/params.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

struct DirectedOptions {
  /// Probability a retained link carries traffic both ways.
  double reciprocity = 0.5;
};

struct DirectedObserved {
  std::vector<Degree> in_degree;   // distinct senders per node
  std::vector<Degree> out_degree;  // distinct receivers per node
  Count directed_edges = 0;        // arcs (a reciprocal link counts 2)

  stats::DegreeHistogram in_histogram() const;
  stats::DegreeHistogram out_histogram() const;
  /// Undirected view: distinct peers in either direction (reciprocal
  /// peers counted once).
  stats::DegreeHistogram total_histogram() const;

  // Per-node count of reciprocal peers; maintained by observe_directed so
  // total_histogram can de-duplicate two-way links.
  std::vector<Degree> reciprocal_;
};

/// Bernoulli(p) edge retention + orientation of the underlying network.
DirectedObserved observe_directed(const UnderlyingNetwork& underlying,
                                  const PaluParams& params, Rng& rng,
                                  const DirectedOptions& opts = {});

}  // namespace palu::core
