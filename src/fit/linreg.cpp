#include "palu/fit/linreg.hpp"

#include <cmath>
#include <vector>

#include "palu/common/error.hpp"

namespace palu::fit {

LinearFit weighted_linear_regression(std::span<const double> x,
                                     std::span<const double> y,
                                     std::span<const double> w) {
  PALU_CHECK(x.size() == y.size() && x.size() == w.size(),
             "weighted_linear_regression: size mismatch");
  double sw = 0.0, swx = 0.0, swy = 0.0;
  std::size_t positive = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    PALU_CHECK(w[i] >= 0.0, "weighted_linear_regression: negative weight");
    if (w[i] > 0.0) ++positive;
    sw += w[i];
    swx += w[i] * x[i];
    swy += w[i] * y[i];
  }
  PALU_CHECK(positive >= 2,
             "weighted_linear_regression: need >= 2 weighted points");
  const double xbar = swx / sw;
  const double ybar = swy / sw;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - xbar;
    const double dy = y[i] - ybar;
    sxx += w[i] * dx * dx;
    sxy += w[i] * dx * dy;
    syy += w[i] * dy * dy;
  }
  PALU_CHECK(sxx > 0.0, "weighted_linear_regression: degenerate x values");
  LinearFit fit;
  fit.n = positive;
  fit.slope = sxy / sxx;
  fit.intercept = ybar - fit.slope * xbar;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  // Residual variance with n−2 dof (using the weighted residual sum).
  if (positive > 2) {
    double rss = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - fit.intercept - fit.slope * x[i];
      rss += w[i] * r * r;
    }
    const double sigma2 = rss / static_cast<double>(positive - 2);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
    fit.intercept_stderr =
        std::sqrt(sigma2 * (1.0 / sw + xbar * xbar / sxx));
  }
  return fit;
}

LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y) {
  const std::vector<double> w(x.size(), 1.0);
  return weighted_linear_regression(x, y, w);
}

}  // namespace palu::fit
