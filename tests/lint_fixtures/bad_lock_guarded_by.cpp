// Fixture: a class holding a mutex must annotate sibling data members.
// entries_ is unannotated; the atomic and the const member are exempt by
// construction and must not fire.
// palu-lint-expect: lock-guarded-by
#include <atomic>
#include <mutex>
#include <vector>

#include "palu/common/thread_annotations.hpp"

class Cache {
 public:
  void put(int k) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(k);
  }

 private:
  std::mutex mutex_;
  std::vector<int> entries_;
  std::atomic<int> hits_{0};
  const int capacity_ = 8;
};
