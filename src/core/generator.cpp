#include "palu/core/generator.hpp"

#include <algorithm>
#include <cmath>

#include "palu/common/error.hpp"
#include "palu/graph/generators.hpp"
#include "palu/rng/distributions.hpp"

namespace palu::core {

UnderlyingNetwork generate_underlying(const PaluParams& params, NodeId n,
                                      Rng& rng,
                                      const GeneratorOptions& opts) {
  params.validate();
  const auto count_of = [n](double fraction) {
    return static_cast<NodeId>(
        std::llround(fraction * static_cast<double>(n)));
  };
  const NodeId core_n = count_of(params.core);
  const NodeId leaf_n = count_of(params.leaves);
  const NodeId hub_n = count_of(params.hubs);
  PALU_CHECK(core_n >= 2, "generate_underlying: core too small at this N");

  UnderlyingNetwork net;
  if (opts.core_kind == CoreKind::kDmsGrowth) {
    // Attachment ∝ degree + a with a = (α − 3)·m yields exponent α.
    const double m = static_cast<double>(opts.dms_edges_per_node);
    const double a = (params.alpha - 3.0) * m;
    PALU_CHECK(a > -m,
               "generate_underlying: grown cores require alpha > 2 "
               "(attachment a = (alpha-3)*m must exceed -m)");
    net.graph = graph::dms_attachment(rng, core_n,
                                      opts.dms_edges_per_node, a);
  } else {
    const Degree dmax = opts.core_dmax > 0
                            ? opts.core_dmax
                            : static_cast<Degree>(core_n - 1);
    net.graph = graph::zeta_degree_core(rng, core_n, params.alpha, dmax);
    if (opts.connect_core) {
      net.graph = graph::connect_by_edge_swap(rng, net.graph);
    }
  }
  net.core_begin = 0;
  net.core_end = core_n;

  // Leaves: degree-1 nodes anchored to core nodes (Section III).  With
  // preferential attachment they pile onto supernodes, reproducing the
  // Fig-2 "supernode leaves" topology.
  net.leaf_begin = net.graph.add_nodes(leaf_n);
  net.leaf_end = net.leaf_begin + leaf_n;
  if (leaf_n > 0) {
    if (opts.leaf_attachment == LeafAttachment::kPreferential) {
      // Endpoint pool over core edges = degree-proportional anchor draw.
      const auto& edges = net.graph.edges();
      const std::size_t core_edges = edges.size();
      PALU_CHECK(core_edges > 0,
                 "generate_underlying: core has no edges to anchor leaves");
      for (NodeId leaf = net.leaf_begin; leaf < net.leaf_end; ++leaf) {
        const auto& e = edges[rng.uniform_index(core_edges)];
        const NodeId anchor = rng.bernoulli(0.5) ? e.u : e.v;
        net.graph.add_edge(leaf, anchor);
      }
    } else {
      for (NodeId leaf = net.leaf_begin; leaf < net.leaf_end; ++leaf) {
        net.graph.add_edge(leaf, rng.uniform_index(core_n));
      }
    }
  }

  // Star hubs with Po(λ) leaves each (Section V).
  net.hub_begin = net.graph.add_nodes(hub_n);
  net.hub_end = net.hub_begin + hub_n;
  for (NodeId hub = net.hub_begin; hub < net.hub_end; ++hub) {
    const std::uint64_t star_leaves =
        rng::sample_poisson(rng, params.lambda);
    if (star_leaves == 0) continue;
    const NodeId first = net.graph.add_nodes(star_leaves);
    for (std::uint64_t k = 0; k < star_leaves; ++k) {
      net.graph.add_edge(hub, first + k);
    }
  }
  return net;
}

graph::Graph generate_observed(const UnderlyingNetwork& underlying,
                               const PaluParams& params, Rng& rng) {
  return graph::bernoulli_edge_sample(rng, underlying.graph, params.window);
}

stats::DegreeHistogram sample_observed_degrees(
    const PaluParams& params, NodeId n, Rng& rng,
    const GeneratorOptions& opts) {
  const UnderlyingNetwork net = generate_underlying(params, n, rng, opts);
  const graph::Graph observed = generate_observed(net, params, rng);
  const auto degrees = observed.degrees();
  return stats::DegreeHistogram::from_degrees(degrees);
}

}  // namespace palu::core
