// Connected components and the Figure-2 topology census.
//
// The paper's Figure 2 names the structures visible in traffic windows:
// isolated nodes (invisible to capture), unattached links (2-node
// components), larger star components, and densely connected core(s) with
// their degree-1 core leaves.  `classify_topology` reproduces that census
// from any observed graph.
#pragma once

#include <cstdint>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"

namespace palu::graph {

/// Union-find over node ids with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(NodeId n);

  NodeId find(NodeId x);
  /// Returns true if the union merged two distinct sets.
  bool unite(NodeId a, NodeId b);
  NodeId component_size(NodeId x);
  NodeId num_components() const noexcept { return components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
  NodeId components_;
};

/// One connected component's shape summary.
struct ComponentInfo {
  NodeId nodes = 0;
  Count edges = 0;  // multi-edges counted individually
  Degree max_degree = 0;
};

/// All connected components of a graph (isolated nodes included, as
/// single-node components with 0 edges).
std::vector<ComponentInfo> connected_components(const Graph& g);

/// The Figure-2 census of an observed network.
struct TopologyCensus {
  Count isolated_nodes = 0;    // degree-0 nodes (unseen by capture)
  Count unattached_links = 0;  // 2-node / 1-edge components
  Count star_components = 0;   // >= 3 nodes, tree, one hub covers all edges
  Count star_leaves = 0;       // degree-1 nodes inside star components
  Count core_components = 0;   // everything larger / denser
  Count core_nodes = 0;        // nodes inside core components
  Count core_leaves = 0;       // degree-1 nodes hanging off core components
  Count largest_component = 0;

  Count total_components() const {
    return unattached_links + star_components + core_components;
  }
};

/// Classifies every component of `g` per Figure 2.  A component with k >= 3
/// nodes is a "star" when it is a tree whose hub touches every edge;
/// anything with a cycle or without a single hub is "core".
TopologyCensus classify_topology(const Graph& g);

/// k-core numbers by the Matula–Beck peeling order: node v's core number
/// is the largest k such that v survives in the subgraph where every node
/// has degree >= k.  The paper's "densely connected core(s)" heritage
/// ([16], [22], [31], [32]) makes core depth the natural density measure
/// for the PA component.  Self-loops/multi-edges are removed first.
std::vector<Degree> k_core_numbers(const Graph& g);

/// Extracts the largest connected component (by node count) as a graph
/// with ids renumbered 0..k−1.  `id_map`, when non-null, receives the
/// new-id → original-id mapping.  The empty graph maps to itself.
Graph largest_component(const Graph& g,
                        std::vector<NodeId>* id_map = nullptr);

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// edges (Newman's r).  Heavy-tailed traffic graphs are typically
/// disassortative (supernodes talk to leaves).  Returns 0 for graphs with
/// < 2 edges or degenerate variance.
double degree_assortativity(const Graph& g);

}  // namespace palu::graph
