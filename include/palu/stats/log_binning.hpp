// Binary logarithmic pooling (binning), Section II-A.
//
// The paper pools the differential cumulative probability with logarithmic
// bins d_i = 2^i:
//
//     D_t(d_i) = P_t(d_i) − P_t(d_{i−1})
//
// i.e. bin i carries the probability mass of degrees in (2^{i−1}, 2^i];
// bin 0 is exactly {d = 1}.  All measured and model distributions in the
// paper (Figs 3 and 4) are compared in this pooled form.
#pragma once

#include <cstdint>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::stats {

/// A log-binned (pooled) probability distribution: mass[i] = D(d_i).
class LogBinned {
 public:
  LogBinned() = default;
  explicit LogBinned(std::vector<double> mass) : mass_(std::move(mass)) {}

  /// Largest bin count a 64-bit Degree can index: bins 0..63, with the
  /// top bin saturating (see bin_index).
  static constexpr std::uint32_t kMaxBins = 64;

  /// Bin index of degree d >= 1: the smallest i with 2^i >= d.  Degrees
  /// above 2^63 saturate into the top bin (i = 63) — its upper edge then
  /// nominally understates its contents, but no degree can overflow the
  /// binning or make from_histogram build a 65th bin.
  static std::uint32_t bin_index(Degree d);

  /// Upper edge d_i = 2^i of bin i; requires i < kMaxBins.
  static Degree bin_upper(std::uint32_t i);

  /// Lower edge (exclusive) of bin i: 2^{i−1}, with bin 0 starting at 0.
  static Degree bin_lower_exclusive(std::uint32_t i);

  /// Pools an empirical histogram.  Throws palu::DataError when empty.
  static LogBinned from_histogram(const DegreeHistogram& h);

  /// Pools a model pmf given as a callable `pmf(Degree d) -> double`
  /// evaluated on 1..dmax (inclusive).  The result is renormalized over
  /// that range, mirroring the paper's truncated model normalization.
  template <typename Pmf>
  static LogBinned from_model_pmf(Pmf&& pmf, Degree dmax) {
    const std::uint32_t nbins = bin_index(dmax) + 1;
    std::vector<double> mass(nbins, 0.0);
    double total = 0.0;
    for (Degree d = 1; d <= dmax; ++d) {
      const double w = pmf(d);
      mass[bin_index(d)] += w;
      total += w;
    }
    if (total > 0.0) {
      for (double& m : mass) m /= total;
    }
    return LogBinned(std::move(mass));
  }

  const std::vector<double>& mass() const noexcept { return mass_; }
  std::size_t num_bins() const noexcept { return mass_.size(); }
  double operator[](std::size_t i) const { return mass_[i]; }

  /// Σ_i D(d_i); 1 up to rounding for any full pooling.
  double total_mass() const;

 private:
  std::vector<double> mass_;
};

/// Accumulates log-binned distributions across consecutive windows t and
/// reports the per-bin mean D(d_i) and standard deviation σ(d_i)
/// (Welford's algorithm; windows missing a bin contribute 0 to it).
class BinnedEnsemble {
 public:
  void add(const LogBinned& window);

  std::size_t num_windows() const noexcept { return count_; }
  std::size_t num_bins() const noexcept { return mean_.size(); }

  /// Per-bin mean across windows.
  std::vector<double> mean() const;

  /// Per-bin sample standard deviation (n−1 denominator; 0 for n < 2).
  std::vector<double> stddev() const;

 private:
  void resize(std::size_t nbins);

  std::vector<double> mean_;
  std::vector<double> m2_;
  std::size_t count_ = 0;
};

}  // namespace palu::stats
