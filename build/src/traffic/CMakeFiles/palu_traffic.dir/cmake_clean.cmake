file(REMOVE_RECURSE
  "CMakeFiles/palu_traffic.dir/aggregates.cpp.o"
  "CMakeFiles/palu_traffic.dir/aggregates.cpp.o.d"
  "CMakeFiles/palu_traffic.dir/assoc.cpp.o"
  "CMakeFiles/palu_traffic.dir/assoc.cpp.o.d"
  "CMakeFiles/palu_traffic.dir/quantities.cpp.o"
  "CMakeFiles/palu_traffic.dir/quantities.cpp.o.d"
  "CMakeFiles/palu_traffic.dir/sparse_matrix.cpp.o"
  "CMakeFiles/palu_traffic.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/palu_traffic.dir/stream.cpp.o"
  "CMakeFiles/palu_traffic.dir/stream.cpp.o.d"
  "CMakeFiles/palu_traffic.dir/window_pipeline.cpp.o"
  "CMakeFiles/palu_traffic.dir/window_pipeline.cpp.o.d"
  "libpalu_traffic.a"
  "libpalu_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
