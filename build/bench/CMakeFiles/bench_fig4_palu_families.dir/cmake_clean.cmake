file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_palu_families.dir/bench_fig4_palu_families.cpp.o"
  "CMakeFiles/bench_fig4_palu_families.dir/bench_fig4_palu_families.cpp.o.d"
  "bench_fig4_palu_families"
  "bench_fig4_palu_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_palu_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
