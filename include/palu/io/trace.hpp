// Plain-text packet traces: the library's ingestion path for real data.
//
// Format: one packet per line, "src dst" as unsigned 64-bit ids, blank
// lines and '#'-prefixed comments ignored.  This is the de-facto exchange
// format of anonymized flow logs once IPs are mapped to integer ids; a
// WIDE/CAIDA-style capture exported this way drops straight into the
// Section II window pipeline.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "palu/graph/graph.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::io {

/// Parses a trace; throws palu::DataError with the line number on
/// malformed input.
std::vector<traffic::Packet> read_trace(std::istream& in);

/// Writes packets one per line, with a format header comment.
void write_trace(std::ostream& out, std::span<const traffic::Packet> pkts);

/// Writes a graph as "u v" edge lines, preceded by a "# nodes=N" directive
/// so isolated nodes survive the round trip.
void write_edge_list(std::ostream& out, const graph::Graph& g);

/// Parses an edge list.  A leading "# nodes=N" comment fixes the node
/// count; otherwise it is max endpoint + 1.  Throws palu::DataError on
/// malformed lines or endpoints out of the declared range.
graph::Graph read_edge_list(std::istream& in);

}  // namespace palu::io
