# Empty dependencies file for math_test.
# This may be replaced when dependencies are built.
