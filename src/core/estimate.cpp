#include "palu/core/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/fit/levmar.hpp"
#include "palu/fit/linreg.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/zeta.hpp"
#include "palu/math/lambda_ratio.hpp"
#include "palu/math/stable.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"

namespace palu::core {
namespace {

// Poisson-shaped bump μ^d/d! evaluated in log space.
double poisson_bump(double mu, Degree d) {
  if (mu <= 0.0) return 0.0;
  return std::exp(static_cast<double>(d) * std::log(mu) -
                  math::log_factorial(d));
}

}  // namespace

double PaluFit::lambda_cap() const { return std::numbers::e * mu; }

double PaluFit::predicted_star_degree_one() const {
  // u·μ·(e^μ + 1): visible star leaves (u·μ·e^μ) plus one-leaf hubs
  // (u·μ).  Folding e^μ into the excess-mass identity keeps this stable:
  // u·e^μ = excess_mass / (1 − (1+μ)e^{−μ}).
  if (mu <= 0.0) return 0.0;
  return u * mu * (std::exp(mu) + 1.0);
}

double PaluFit::predicted_share(Degree d) const {
  PALU_CHECK(d >= 1, "PaluFit::predicted_share: requires d >= 1");
  if (d == 1) {
    return c + l + predicted_star_degree_one();
  }
  return c * std::pow(static_cast<double>(d), -alpha) +
         u * poisson_bump(mu, d);
}

namespace {
PaluFit fit_palu_single_pass(const stats::EmpiricalDistribution& dist,
                             const PaluFitOptions& opts);
}  // namespace

PaluFit fit_palu(const stats::EmpiricalDistribution& dist,
                 const PaluFitOptions& opts) {
  PaluFitOptions pass_opts = opts;
  PaluFit fit = fit_palu_single_pass(dist, pass_opts);
  if (!opts.adaptive_tail) return fit;
  // If the bump reaches past the tail start, (c, α) were fit on
  // contaminated data; push the tail start beyond the bump and refit
  // (at most twice — the bump estimate stabilizes quickly).
  for (int pass = 0; pass < 2; ++pass) {
    if (!fit.mu_identifiable) break;
    const auto needed = static_cast<Degree>(
        std::ceil(fit.mu + 4.0 * std::sqrt(fit.mu) + 1.0));
    if (needed <= pass_opts.tail_min) break;
    pass_opts.tail_min = std::min<Degree>(needed, 512);
    try {
      fit = fit_palu_single_pass(dist, pass_opts);
    } catch (const DataError&) {
      break;  // pushed tail has too few points: keep the previous pass
    }
  }
  return fit;
}

namespace {
PaluFit fit_palu_single_pass(const stats::EmpiricalDistribution& dist,
                             const PaluFitOptions& opts) {
  PALU_CHECK(opts.tail_min >= 2, "fit_palu: tail_min must be >= 2");
  const auto& support = dist.support();
  const auto& pmf = dist.pmf();

  // --- (a) fit (c, α) to the tail d >= tail_min.
  std::vector<double> x, y, w;
  double tail_mass = 0.0;
  stats::DegreeHistogram tail_hist;
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (support[i] < opts.tail_min) continue;
    const double count =
        pmf[i] * static_cast<double>(dist.sample_size());
    x.push_back(std::log(static_cast<double>(support[i])));
    y.push_back(std::log(pmf[i]));
    w.push_back(opts.weight_by_count ? count : 1.0);
    tail_mass += pmf[i];
    tail_hist.add(support[i],
                  std::max<Count>(1, static_cast<Count>(
                                         std::llround(count))));
  }
  if (x.size() < 3) {
    throw DataError(
        "fit_palu: fewer than 3 support points at/above tail_min");
  }
  // Regression runs either way: it supplies the r² diagnostic, and the
  // paper-fidelity mode uses its coefficients directly.
  const fit::LinearFit tail = fit::weighted_linear_regression(x, y, w);

  PaluFit out;
  if (opts.tail_method == TailMethod::kRegression) {
    out.alpha = -tail.slope;
    out.c = std::exp(tail.intercept);
  } else {
    const fit::PowerLawFit mle =
        fit::fit_power_law_fixed_xmin(tail_hist, opts.tail_min);
    out.alpha = mle.alpha;
    // c·ζ(α, tail_min) must equal the empirical tail mass.
    out.c = tail_mass /
            math::hurwitz_zeta(out.alpha,
                               static_cast<double>(opts.tail_min));
  }
  out.tail_r_squared = tail.r_squared;
  out.tail_points = x.size();

  // --- (b) excess moments over 2 <= d <= excess_max.
  const Degree excess_cap =
      opts.excess_max > 0 ? opts.excess_max : ~Degree{0};
  double mass = 0.0;       // Σ e(d)
  double first_moment = 0.0;  // Σ d·e(d)
  for (std::size_t i = 0; i < support.size(); ++i) {
    const Degree d = support[i];
    if (d < 2 || d > excess_cap) continue;
    double excess =
        pmf[i] - out.c * std::pow(static_cast<double>(d), -out.alpha);
    if (excess < 0.0) {
      if (opts.clip_negative_excess) continue;
    }
    mass += excess;
    first_moment += static_cast<double>(d) * excess;
  }
  out.excess_mass = mass;
  out.mu_identifiable = mass >= opts.min_excess_mass && first_moment > 0.0;
  if (out.mu_identifiable) {
    out.moment_ratio = first_moment / mass;
    if (out.moment_ratio > 2.0) {
      out.mu = math::invert_lambda_moment_ratio(out.moment_ratio);
      if (out.mu > opts.mu_cap) {
        out.mu = 0.0;
        out.mu_identifiable = false;
      }
    } else {
      // g(μ) >= 2 always; R <= 2 means the bump is consistent with μ = 0.
      out.mu = 0.0;
      out.mu_identifiable = false;
    }
  }

  // --- (c) amplitudes: u from the excess mass, l from the degree-1 mass.
  if (out.mu > 0.0) {
    out.u = mass / math::expm1_minus_x(out.mu);
  } else {
    out.u = 0.0;
  }
  const double p1 = dist.mass_at_one();
  out.l = std::max(0.0, p1 - out.c - out.predicted_star_degree_one());
  return out;
}
}  // namespace

PaluFit fit_palu(const stats::DegreeHistogram& h,
                 const PaluFitOptions& opts) {
  return fit_palu(stats::EmpiricalDistribution::from_histogram(h), opts);
}

PaluFitCi bootstrap_palu_fit(const stats::DegreeHistogram& h, Rng& rng,
                             ThreadPool& pool,
                             const fit::BootstrapOptions& boot_opts,
                             const PaluFitOptions& fit_opts) {
  const auto statistic = [&fit_opts](const stats::DegreeHistogram& sample) {
    const PaluFit f = fit_palu(sample, fit_opts);
    return std::vector<double>{f.alpha, f.c, f.mu, f.u, f.l};
  };
  const auto results =
      fit::bootstrap_ci_multi(h, statistic, rng, pool, boot_opts);
  PaluFitCi out;
  out.alpha = results[0];
  out.c = results[1];
  out.mu = results[2];
  out.u = results[3];
  out.l = results[4];
  return out;
}

namespace {

// The joint-polish least-squares problem shared by refine_palu_fit and
// robust_fit_palu.  Parameters: log α, log c, log μ, log u, log(l + ε) —
// all constants are positive (l can be 0: the ε floor keeps the log
// finite).
struct RefineProblem {
  std::vector<Degree> ds;
  std::vector<double> ps, ws;
  std::vector<double> x0;
  PaluFit base;
  bool viable = false;  // enough support points to polish

  PaluFit unpack(const std::vector<double>& x) const {
    PaluFit f = base;
    f.alpha = std::exp(x[0]);
    f.c = std::exp(x[1]);
    f.mu = std::exp(x[2]);
    f.u = std::exp(x[3]);
    f.l = std::exp(x[4]);
    return f;
  }

  std::vector<double> residuals(const std::vector<double>& x) const {
    const PaluFit f = unpack(x);
    if (f.alpha > 30.0 || f.mu > 40.0) {
      throw InvalidArgument("refine_palu_fit: off-domain step");
    }
    std::vector<double> r(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
      r[i] = ws[i] * (f.predicted_share(ds[i]) - ps[i]);
    }
    return r;
  }

  double objective(const PaluFit& f) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const double r = ws[i] * (f.predicted_share(ds[i]) - ps[i]);
      acc += r * r;
    }
    return acc;
  }
};

RefineProblem make_refine_problem(const stats::EmpiricalDistribution& dist,
                                  const PaluFit& initial,
                                  Degree refine_max) {
  RefineProblem p;
  p.base = initial;
  const auto& support = dist.support();
  const auto& pmf = dist.pmf();
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (support[i] > refine_max) break;
    p.ds.push_back(support[i]);
    p.ps.push_back(pmf[i]);
    p.ws.push_back(std::sqrt(pmf[i] *
                             static_cast<double>(dist.sample_size())));
  }
  p.viable = p.ds.size() >= 6;
  constexpr double kFloor = 1e-12;
  p.x0 = {std::log(std::max(initial.alpha, 1.05)),
          std::log(std::max(initial.c, kFloor)),
          std::log(std::max(initial.mu, 1e-3)),
          std::log(std::max(initial.u, kFloor)),
          std::log(std::max(initial.l, kFloor))};
  return p;
}

}  // namespace

PaluFit refine_palu_fit(const stats::EmpiricalDistribution& dist,
                        const PaluFit& initial, Degree refine_max) {
  PALU_CHECK(refine_max >= 8, "refine_palu_fit: refine_max too small");
  const RefineProblem problem =
      make_refine_problem(dist, initial, refine_max);
  if (!problem.viable) return initial;  // not enough points to polish

  const auto residuals = [&problem](const std::vector<double>& x) {
    return problem.residuals(x);
  };
  fit::LevMarOptions opts;
  opts.max_iterations = 120;
  const auto solution = fit::levenberg_marquardt(residuals, problem.x0,
                                                 opts);
  // Accept only if the polish actually reduced the residual.
  if (solution.chi_squared >= problem.objective(initial)) return initial;
  PaluFit refined = problem.unpack(solution.x);
  refined.mu_identifiable = initial.mu_identifiable;
  return refined;
}

namespace {

// Shared driver behind robust_fit_palu and robust_fit_palu_warm.  `warm`,
// when non-null, (a) seeds the optimizer ladder's x0 with the previous
// window's parameters and (b) stands in as the base fit when the staged
// pipeline fails on every relaxed tail start.
RobustPaluFit robust_fit_palu_impl(const stats::EmpiricalDistribution& dist,
                                   const PaluFitOptions& fit_opts,
                                   const fit::RobustFitOptions& robust_opts,
                                   Degree refine_max, const PaluFit* warm) {
  RobustPaluFit out;
  obs::Registry& registry = robust_opts.metrics != nullptr
                                ? *robust_opts.metrics
                                : obs::default_registry();
  const auto record_result = [&registry](fit::RobustStage stage) {
    registry
        .counter(obs::names::kFitResults,
                 {{"stage", std::string(fit::to_string(stage))}})
        .inc();
  };

  // Base fit from the staged moment pipeline, retrying with relaxed tail
  // starts when the tail is too thin to regress (degenerate windows).
  PaluFit base;
  bool have_base = false;
  std::vector<Degree> tails = {fit_opts.tail_min};
  for (const Degree relaxed : {Degree{6}, Degree{4}, Degree{2}}) {
    if (relaxed < fit_opts.tail_min) tails.push_back(relaxed);
  }
  bool first_base_attempt = true;
  obs::Counter& base_retries =
      registry.counter(obs::names::kFitBaseRetries);
  for (const Degree tail : tails) {
    PaluFitOptions attempt = fit_opts;
    attempt.tail_min = tail;
    if (!first_base_attempt) {
      base_retries.inc();
    }
    first_base_attempt = false;
    try {
      base = fit_palu(dist, attempt);
      have_base = true;
      break;
    } catch (const Error& e) {
      out.error = e.what();
    }
  }
  if (!have_base && warm != nullptr) {
    // Degraded base: the previous window's parameters.  Lower provenance
    // than a same-window moment fit, but they keep a pathological window
    // from producing nothing at all.
    base = *warm;
    have_base = true;
    out.warm_base = true;
  }
  if (!have_base) {
    record_result(fit::RobustStage::kFailed);
    return out;  // stage == kFailed, error set
  }
  out.error.clear();

  RefineProblem problem =
      make_refine_problem(dist, base, std::max<Degree>(refine_max, 8));
  if (warm != nullptr) {
    // Warm start: the ladder descends from the previous window's
    // parameters (consecutive windows are near-identical problems, so LM
    // typically converges in a handful of iterations).
    constexpr double kFloor = 1e-12;
    problem.x0 = {std::log(std::max(warm->alpha, 1.05)),
                  std::log(std::max(warm->c, kFloor)),
                  std::log(std::max(warm->mu, 1e-3)),
                  std::log(std::max(warm->u, kFloor)),
                  std::log(std::max(warm->l, kFloor))};
  }
  if (!problem.viable) {
    // Too little support to polish: the staged pipeline result stands.
    out.fit = base;
    out.stage = fit::RobustStage::kMoments;
    record_result(out.stage);
    return out;
  }

  const auto residuals = [&problem](const std::vector<double>& x) {
    return problem.residuals(x);
  };
  const auto fallback = [&problem]() { return problem.x0; };
  const fit::RobustFitResult rr =
      fit::robust_least_squares(residuals, problem.x0, fallback,
                                robust_opts);
  out.diagnostics = rr.diagnostics;
  // The optimizer result is only an upgrade if it actually beats the
  // closed-form base fit; otherwise the moment estimators stand.
  if (!rr.ok() || rr.stage == fit::RobustStage::kMoments ||
      rr.objective >= problem.objective(base)) {
    out.fit = base;
    out.stage = fit::RobustStage::kMoments;
    record_result(out.stage);
    return out;
  }
  out.fit = problem.unpack(rr.x);
  out.fit.mu_identifiable = base.mu_identifiable;
  out.stage = rr.stage;
  record_result(out.stage);
  return out;
}

// Histogram front door shared by the cold and warm drivers: converts, and
// treats a degenerate histogram as bad data (kFailed), not as a throw.
RobustPaluFit robust_fit_palu_from_histogram(
    const stats::DegreeHistogram& h, const PaluFitOptions& fit_opts,
    const fit::RobustFitOptions& robust_opts, Degree refine_max,
    const PaluFit* warm) {
  try {
    return robust_fit_palu_impl(
        stats::EmpiricalDistribution::from_histogram(h), fit_opts,
        robust_opts, refine_max, warm);
  } catch (const Error& e) {
    // The inner driver never ran, so this failure is recorded here.
    obs::Registry& registry = robust_opts.metrics != nullptr
                                  ? *robust_opts.metrics
                                  : obs::default_registry();
    registry
        .counter(obs::names::kFitResults,
                 {{"stage",
                   std::string(fit::to_string(fit::RobustStage::kFailed))}})
        .inc();
    RobustPaluFit out;
    out.error = e.what();
    return out;
  }
}

}  // namespace

RobustPaluFit robust_fit_palu(const stats::EmpiricalDistribution& dist,
                              const PaluFitOptions& fit_opts,
                              const fit::RobustFitOptions& robust_opts,
                              Degree refine_max) {
  return robust_fit_palu_impl(dist, fit_opts, robust_opts, refine_max,
                              nullptr);
}

RobustPaluFit robust_fit_palu(const stats::DegreeHistogram& h,
                              const PaluFitOptions& fit_opts,
                              const fit::RobustFitOptions& robust_opts,
                              Degree refine_max) {
  return robust_fit_palu_from_histogram(h, fit_opts, robust_opts,
                                        refine_max, nullptr);
}

RobustPaluFit robust_fit_palu_warm(const stats::EmpiricalDistribution& dist,
                                   const PaluFit& warm,
                                   const PaluFitOptions& fit_opts,
                                   const fit::RobustFitOptions& robust_opts,
                                   Degree refine_max) {
  return robust_fit_palu_impl(dist, fit_opts, robust_opts, refine_max,
                              &warm);
}

RobustPaluFit robust_fit_palu_warm(const stats::DegreeHistogram& h,
                                   const PaluFit& warm,
                                   const PaluFitOptions& fit_opts,
                                   const fit::RobustFitOptions& robust_opts,
                                   Degree refine_max) {
  return robust_fit_palu_from_histogram(h, fit_opts, robust_opts,
                                        refine_max, &warm);
}

double estimate_mu_pointwise(const stats::EmpiricalDistribution& dist,
                             double c, double alpha,
                             const PaluFitOptions& opts) {
  const auto& support = dist.support();
  const auto& pmf = dist.pmf();
  const Degree excess_cap =
      opts.excess_max > 0 ? opts.excess_max : ~Degree{0};
  // Point-wise estimates from consecutive excess ratios:
  //   e(d+1)/e(d) = μ/(d+1)  =>  μ̂_d = (d+1)·e(d+1)/e(d).
  std::vector<std::pair<double, double>> estimates;  // (μ̂, weight)
  for (std::size_t i = 0; i + 1 < support.size(); ++i) {
    const Degree d = support[i];
    if (d < 2 || support[i + 1] != d + 1 || d + 1 > excess_cap) continue;
    const double e0 =
        pmf[i] - c * std::pow(static_cast<double>(d), -alpha);
    const double e1 =
        pmf[i + 1] - c * std::pow(static_cast<double>(d + 1), -alpha);
    if (e0 <= 0.0 || e1 <= 0.0) continue;
    const double mu_hat = static_cast<double>(d + 1) * e1 / e0;
    estimates.emplace_back(
        mu_hat, pmf[i] * static_cast<double>(dist.sample_size()));
  }
  if (estimates.empty()) return 0.0;
  std::sort(estimates.begin(), estimates.end());
  double total = 0.0;
  for (const auto& [m, wt] : estimates) total += wt;
  double acc = 0.0;
  for (const auto& [m, wt] : estimates) {
    acc += wt;
    if (acc >= 0.5 * total) return m;
  }
  return estimates.back().first;
}

}  // namespace palu::core
