// Descriptive summaries of degree-style distributions.
//
// The paper's Section II motivates the field with "the importance of a few
// supernodes": concentration measures quantify it.  This module adds
// quantiles, the Gini coefficient of the degree mass (how much of the
// total degree the largest players hold), and the top-share curve, plus
// plain moments.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::stats {

struct DistributionSummary {
  Count observations = 0;
  Degree min = 0;
  Degree max = 0;       // the paper's d_max (Eq. 1)
  double mean = 0.0;
  double variance = 0.0;  // population variance
  double gini = 0.0;      // of the value mass; 0 = equal, →1 = one holds all
};

/// Computes all summary fields in one sorted pass.
DistributionSummary summarize(const DegreeHistogram& h);

/// Value at quantile q ∈ [0, 1] (lower interpolation on the step cdf).
Degree quantile(const DegreeHistogram& h, double q);

/// Fraction of the total value mass held by the top `top_fraction` of
/// observations (e.g. 0.01 → "share of degree mass held by the top 1% of
/// nodes": the supernode concentration of Section II).
double top_share(const DegreeHistogram& h, double top_fraction);

}  // namespace palu::stats
