// Analytic synthesis (PR 9): the expected-window path vs sampled truth,
// plus its pipeline semantics (determinism, replicates, cancellation,
// failure budget, metrics labels).
//
// The expectation path computes E[per-bin entity count] exactly for the
// packet quantities (Binomial marginals of the Multinomial window) and
// under within-entity link independence for the link-count quantities
// (Poisson-binomial over per-link visibilities; the dropped O(q_i·q_j)
// negative correlation is far below Monte-Carlo noise on these graphs).
// Its contract against a sampled ensemble is therefore CLT-style: the
// 64-replicate counts-path mean of every bin must sit within standard-
// error bands of the analytic mass, for all six quantities and several
// seeds.  See DESIGN.md §5i.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <string>

#include "palu/graph/generators.hpp"
#include "palu/graph/graph.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/aggregates.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

constexpr std::array<traffic::Quantity, 6> kEveryQuantity = {
    traffic::Quantity::kSourcePackets,
    traffic::Quantity::kSourceFanOut,
    traffic::Quantity::kLinkPackets,
    traffic::Quantity::kDestinationFanIn,
    traffic::Quantity::kDestinationPackets,
    traffic::Quantity::kUndirectedDegree};

traffic::SweepOptions expected_options() {
  traffic::SweepOptions opts;
  opts.synthesis = traffic::SynthesisMode::kExpected;
  return opts;
}

TEST(SweepExpected, MatchesSampledEnsembleMeansEverywhere) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(2);
  constexpr std::size_t kReplicates = 64;
  constexpr Count kN = 3000;
  for (const std::uint64_t seed : {17u, 101u, 9000u}) {
    for (const auto q : kEveryQuantity) {
      const std::string context = std::string(traffic::quantity_name(q)) +
                                  " seed " + std::to_string(seed);
      const auto expected = traffic::sweep_windows(
          g, traffic::RateModel{}, kN, 1, q, seed, pool, expected_options());
      ASSERT_TRUE(expected.expected.has_value()) << context;
      traffic::SweepOptions sampled_opts;
      sampled_opts.synthesis = traffic::SynthesisMode::kMultinomial;
      const auto sampled = traffic::sweep_windows(
          g, traffic::RateModel{}, kN, kReplicates, q, seed, pool,
          sampled_opts);
      const auto& mass = expected.expected->mass;
      const auto mean = sampled.ensemble.mean();
      const auto sd = sampled.ensemble.stddev();
      const std::size_t bins = std::max<std::size_t>(mean.size(),
                                                     mass.num_bins());
      for (std::size_t i = 0; i < bins; ++i) {
        const double analytic = i < mass.num_bins() ? mass[i] : 0.0;
        const double mc = i < mean.size() ? mean[i] : 0.0;
        const double s = i < sd.size() ? sd[i] : 0.0;
        // 6 standard errors of the replicate mean plus an absolute floor
        // for bins whose sample σ underestimates (rare tail bins).
        const double tol =
            6.0 * s / std::sqrt(static_cast<double>(kReplicates)) + 0.004;
        EXPECT_NEAR(analytic, mc, tol) << context << " bin " << i;
      }
      // The analytic d_max stand-in (median of max) must land within the
      // spread of sampled maxima — same log₂ bin neighbourhood.
      ASSERT_GT(expected.max_value, 0u) << context;
      const double lg_e = std::log2(static_cast<double>(expected.max_value));
      const double lg_s = std::log2(static_cast<double>(sampled.max_value));
      EXPECT_NEAR(lg_e, lg_s, 1.5) << context;
    }
  }
}

TEST(SweepExpected, AggregatesMatchSampledTableI) {
  Rng gen_rng(11);
  const auto g = graph::erdos_renyi(gen_rng, 300, 0.03);
  ThreadPool pool(2);
  constexpr Count kN = 4000;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, kN, 1, traffic::Quantity::kUndirectedDegree,
      /*seed=*/23, pool, expected_options());
  ASSERT_TRUE(sweep.expected.has_value());
  const auto& agg = sweep.expected->aggregates;

  // Closed-form cross-checks against the generator's own expectations,
  // replaying the sweep's exact rate draw (Rng(seed).fork(0)).
  const auto edge_rates =
      traffic::make_edge_rates(g, traffic::RateModel{}, Rng(23).fork(0));
  traffic::SyntheticTrafficGenerator gen(g, edge_rates, Rng(1));
  EXPECT_DOUBLE_EQ(agg.valid_packets, static_cast<double>(kN));
  EXPECT_NEAR(agg.unique_links, gen.expected_unique_links(kN),
              1e-9 * gen.expected_unique_links(kN));

  // Monte-Carlo cross-check of the node visibilities and the max: means
  // of sampled Table-I aggregates across windows.
  constexpr int kWindows = 64;
  double src = 0.0, dst = 0.0, links = 0.0, maxp = 0.0;
  for (int w = 0; w < kWindows; ++w) {
    const auto a = gen.window(kN);
    const auto t = traffic::aggregates_summation(a);
    src += static_cast<double>(t.unique_sources);
    dst += static_cast<double>(t.unique_destinations);
    links += static_cast<double>(t.unique_links);
    maxp += static_cast<double>(t.max_link_packets);
  }
  src /= kWindows;
  dst /= kWindows;
  links /= kWindows;
  maxp /= kWindows;
  // Unique counts are sums of ~|V| Bernoullis: σ ≤ √mean, so 6 standard
  // errors is 6·√(mean/64).
  EXPECT_NEAR(agg.unique_sources, src, 6.0 * std::sqrt(src / kWindows) + 1.0);
  EXPECT_NEAR(agg.unique_destinations, dst,
              6.0 * std::sqrt(dst / kWindows) + 1.0);
  EXPECT_NEAR(agg.unique_links, links,
              6.0 * std::sqrt(links / kWindows) + 1.0);
  // The analytic max is a median, the sampled one a mean of maxima — they
  // need only agree to within the distribution's own spread.
  EXPECT_NEAR(agg.max_link_packets / maxp, 1.0, 0.35);
}

TEST(SweepExpected, DeterministicAndFlatInWindowCount) {
  Rng gen_rng(13);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.04);
  ThreadPool pool(2);
  const auto q = traffic::Quantity::kSourceFanOut;
  const auto a = traffic::sweep_windows(g, traffic::RateModel{}, 2000, 1, q,
                                        5, pool, expected_options());
  // Same seed (the seed fixes the Pareto rate draw, which the analytic
  // result legitimately depends on), different — even zero — window
  // count: bit-identical, since the path consumes no per-window RNG and
  // num_windows is deliberately not validated on it.
  const auto b = traffic::sweep_windows(g, traffic::RateModel{}, 2000, 0, q,
                                        5, pool, expected_options());
  ASSERT_TRUE(a.expected.has_value());
  ASSERT_TRUE(b.expected.has_value());
  ASSERT_EQ(a.expected->bin_counts.size(), b.expected->bin_counts.size());
  for (std::size_t i = 0; i < a.expected->bin_counts.size(); ++i) {
    EXPECT_EQ(a.expected->bin_counts[i], b.expected->bin_counts[i]) << i;
  }
  EXPECT_EQ(a.expected->visible_entities, b.expected->visible_entities);
  EXPECT_EQ(a.expected->max_value, b.expected->max_value);
  EXPECT_EQ(a.expected->aggregates.max_link_packets,
            b.expected->aggregates.max_link_packets);
  // The expected mass is a unit distribution with the merged histogram
  // deliberately left empty (nothing integer-valued to merge), and with
  // replicates off the ensemble holds the mass as one pseudo-window.
  EXPECT_NEAR(a.expected->mass.total_mass(), 1.0, 1e-9);
  EXPECT_EQ(a.merged.total(), 0u);
  EXPECT_EQ(a.ensemble.num_windows(), 1u);
  const auto em = a.ensemble.mean();
  for (std::size_t i = 0; i < em.size(); ++i) {
    const double m = i < a.expected->mass.num_bins() ? a.expected->mass[i]
                                                     : 0.0;
    EXPECT_DOUBLE_EQ(em[i], m) << i;
  }
}

TEST(SweepExpected, ReplicatesAttachSampledConfidenceBands) {
  Rng gen_rng(17);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.04);
  ThreadPool pool(2);
  auto opts = expected_options();
  opts.expected_replicates = 12;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 2000, 1, traffic::Quantity::kLinkPackets,
      7, pool, opts);
  ASSERT_TRUE(sweep.expected.has_value());
  EXPECT_EQ(sweep.ensemble.num_windows(), 12u);
  // With real sampled windows behind it, the ensemble now carries σ > 0
  // somewhere, and its mean must straddle the analytic mass (loose bound:
  // this is the same law the agreement test pins tightly).
  const auto sd = sweep.ensemble.stddev();
  double max_sd = 0.0;
  for (const double s : sd) max_sd = std::max(max_sd, s);
  EXPECT_GT(max_sd, 0.0);
}

TEST(SweepExpected, RejectsZeroPacketsAndHonoursCancel) {
  Rng gen_rng(19);
  const auto g = graph::erdos_renyi(gen_rng, 100, 0.05);
  ThreadPool pool(1);
  EXPECT_THROW(traffic::sweep_windows(g, traffic::RateModel{}, 0, 1,
                                      traffic::Quantity::kLinkPackets, 1,
                                      pool, expected_options()),
               palu::InvalidArgument);
  std::atomic<bool> cancel{true};
  auto opts = expected_options();
  opts.cancel = &cancel;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 1, traffic::Quantity::kLinkPackets, 1,
      pool, opts);
  EXPECT_TRUE(sweep.cancelled);
  EXPECT_EQ(sweep.windows_skipped, 1u);
  EXPECT_FALSE(sweep.expected.has_value());
}

TEST(SweepExpected, FailpointHonoursFailureBudget) {
  Rng gen_rng(23);
  const auto g = graph::erdos_renyi(gen_rng, 100, 0.05);
  ThreadPool pool(1);
  {
    testing::FailpointGuard guard;
    failpoints::arm("theory.expected_window", /*fires=*/1, /*skip=*/0);
    try {
      traffic::sweep_windows(g, traffic::RateModel{}, 1000, 1,
                             traffic::Quantity::kLinkPackets, 1, pool,
                             expected_options());
      FAIL() << "strict expected sweep must rethrow the failure";
    } catch (const traffic::SweepWindowError& e) {
      EXPECT_EQ(e.window(), 0u);
    }
  }
  {
    testing::FailpointGuard guard;
    failpoints::arm("theory.expected_window", /*fires=*/1, /*skip=*/0);
    auto opts = expected_options();
    opts.max_failed_windows = 1;
    const auto sweep = traffic::sweep_windows(
        g, traffic::RateModel{}, 1000, 1, traffic::Quantity::kLinkPackets,
        1, pool, opts);
    EXPECT_EQ(sweep.failures.size(), 1u);
    EXPECT_FALSE(sweep.expected.has_value());
  }
}

TEST(SweepExpected, StageMetricsCarryExpectedPathLabel) {
  Rng gen_rng(29);
  const auto g = graph::erdos_renyi(gen_rng, 200, 0.04);
  ThreadPool pool(1);
  obs::Registry registry;
  auto opts = expected_options();
  opts.metrics = &registry;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 5000, 1,
      traffic::Quantity::kUndirectedDegree, 3, pool, opts);
  ASSERT_TRUE(sweep.expected.has_value());
  EXPECT_GT(sweep.timings.sampling_cpu_ns, 0u);    // prepare (visibilities)
  EXPECT_GT(sweep.timings.accumulation_cpu_ns, 0u);  // marginal folding
  EXPECT_GT(sweep.timings.binning_cpu_ns, 0u);     // assembly + aggregates
  const auto snap = registry.snapshot();
  bool saw_expected_label = false;
  for (const auto& h : snap.histograms) {
    if (h.name != obs::names::kSweepStageDurationNs) continue;
    for (const auto& [key, value] : h.labels) {
      if (key == "path") {
        EXPECT_EQ(value, "expected");
        saw_expected_label = true;
      }
    }
  }
  EXPECT_TRUE(saw_expected_label);
}

}  // namespace
}  // namespace palu
