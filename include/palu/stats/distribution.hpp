// Empirical probability objects derived from a degree histogram:
// p_t(d), the cumulative P_t(d), and summary statistics (Section II).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::stats {

/// The empirical pmf/cdf of one histogram, on its sorted support.
class EmpiricalDistribution {
 public:
  /// Normalizes a non-empty histogram: p(d) = n(d) / Σ n(d).
  /// Throws palu::DataError if the histogram is empty.
  static EmpiricalDistribution from_histogram(const DegreeHistogram& h);

  const std::vector<Degree>& support() const noexcept { return support_; }
  const std::vector<double>& pmf() const noexcept { return pmf_; }
  const std::vector<double>& cdf() const noexcept { return cdf_; }

  /// Total observations behind the distribution.
  Count sample_size() const noexcept { return n_; }

  /// p(d); 0 if d is not in the support.
  double probability_at(Degree d) const;

  /// P(d) = Σ_{d' <= d} p(d'); 0 below the support, 1 above it.
  double cumulative_at(Degree d) const;

  /// Complementary cdf P[X >= d] — the quantity power-law plots usually
  /// show (1 at/below the support minimum, p(max) at the maximum).
  double ccdf_at(Degree d) const;

  /// Largest observed value: the paper's d_max = argmax(D(d) > 0) (Eq. 1).
  Degree max_value() const { return support_.back(); }

  /// Fraction of mass at d == 1 (the leaves + unattached signature).
  double mass_at_one() const { return probability_at(1); }

  /// Mean of the distribution Σ d·p(d).
  double mean() const;

 private:
  std::vector<Degree> support_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
  Count n_ = 0;
};

/// Kolmogorov–Smirnov distance between an empirical cdf and a (discrete)
/// model cdf: sup over observed d of |P_emp(d) − P_model(d)|, the statistic
/// Clauset–Shalizi–Newman use for discrete power-law data.
template <typename ModelCdf>
double ks_distance(const EmpiricalDistribution& emp, ModelCdf&& model_cdf) {
  double worst = 0.0;
  const auto& sup = emp.support();
  const auto& cdf = emp.cdf();
  for (std::size_t i = 0; i < sup.size(); ++i) {
    worst = std::max(worst, std::abs(cdf[i] - model_cdf(sup[i])));
  }
  return worst;
}

}  // namespace palu::stats
