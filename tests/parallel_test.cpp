// Unit tests for palu/parallel: thread pool semantics, parallel_for
// coverage, reductions, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/parallel/scratch_pool.hpp"
#include "palu/parallel/thread_pool.hpp"

namespace palu {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  auto fut = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter]() { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, /*grain=*/64, [&](IndexRange r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, 1, [&](IndexRange) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, InvertedRangeThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 5, 4, 1, [](IndexRange) {}),
               InvalidArgument);
}

TEST(ParallelFor, SingleChunkRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_for(pool, 0, 10, /*grain=*/1000, [&](IndexRange) {
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000, 10,
                   [&](IndexRange r) {
                     if (r.begin >= 500) {
                       throw DataError("chunk failure");
                     }
                   }),
      DataError);
}

TEST(ParallelFor, PoolSurvivesWorkerExceptions) {
  // Regression: an exception in a sweep worker must neither terminate the
  // process nor deadlock the pool — the pool must stay fully usable.
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        parallel_for(pool, 0, 1000, 1,
                     [&](IndexRange) {
                       throw DataError("every chunk fails");
                     }),
        DataError);
  }
  // All workers still alive and draining the queue.
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&counter]() { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  const auto total = parallel_reduce<std::uint64_t>(
      pool, 0, kN, 128, 0,
      [](IndexRange r) {
        std::uint64_t acc = 0;
        for (std::size_t i = r.begin; i < r.end; ++i) acc += i;
        return acc;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const int v = parallel_reduce<int>(
      pool, 3, 3, 1, 17, [](IndexRange) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 17);
}

TEST(ParallelReduce, CombineRespectsChunkOrder) {
  // Concatenation is associative but not commutative: the result must be
  // in ascending chunk order regardless of completion order.
  ThreadPool pool(4);
  const auto concat = parallel_reduce<std::vector<std::size_t>>(
      pool, 0, 64, 4, {},
      [](IndexRange r) {
        std::vector<std::size_t> v;
        for (std::size_t i = r.begin; i < r.end; ++i) v.push_back(i);
        return v;
      },
      [](std::vector<std::size_t> a, std::vector<std::size_t> b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
  ASSERT_EQ(concat.size(), 64u);
  for (std::size_t i = 0; i < concat.size(); ++i) EXPECT_EQ(concat[i], i);
}

TEST(MakeChunks, RespectsGrain) {
  const auto chunks = detail::make_chunks(0, 100, 30, 8);
  for (const auto& c : chunks) {
    EXPECT_GE(c.size(), 1u);
  }
  // Full coverage, no overlap.
  std::size_t expected_begin = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expected_begin);
    expected_begin = c.end;
  }
  EXPECT_EQ(expected_begin, 100u);
  // grain=30 over 100 indices: at most 4 chunks.
  EXPECT_LE(chunks.size(), 4u);
}

TEST(ScratchPool, ReusesReleasedSlotInsteadOfRebuilding) {
  ScratchPool<int> pool([]() { return std::make_unique<int>(-1); });
  for (int round = 0; round < 5; ++round) {
    auto lease = pool.acquire();
    // Round 0 sees the factory value; later rounds see the previous
    // round's scribble — reuse keeps slot state (arena semantics), it
    // does not reconstruct.
    EXPECT_EQ(*lease, round - 1);
    *lease = round;
  }
  // Serial acquire/release: one slot serves every round.
  EXPECT_EQ(pool.slots_created(), 1u);
}

TEST(ScratchPool, ThrowingFactoryDoesNotInflateSlotCount) {
  // Regression (PR 3): slots_created() used to be incremented before the
  // factory ran, so a throwing factory left the pool claiming slots that
  // never existed — which broke max-concurrency assertions in the sweep
  // tests whenever fault injection hit generator construction.
  int calls = 0;
  ScratchPool<int> pool([&calls]() -> std::unique_ptr<int> {
    if (++calls == 1) throw DataError("lease boom");
    return std::make_unique<int>(calls);
  });
  EXPECT_THROW(pool.acquire(), DataError);
  EXPECT_EQ(pool.slots_created(), 0u);
  auto lease = pool.acquire();  // the pool must stay usable after a throw
  EXPECT_EQ(*lease, 2);
  EXPECT_EQ(pool.slots_created(), 1u);
}

TEST(ScratchPool, NullFactoryResultIsRejected) {
  ScratchPool<int> pool([]() { return std::unique_ptr<int>(); });
  EXPECT_THROW(pool.acquire(), InvalidArgument);
  EXPECT_EQ(pool.slots_created(), 0u);
}

TEST(ScratchPool, ConcurrentLeasesNeverShareASlot) {
  ScratchPool<std::atomic<int>> pool(
      []() { return std::make_unique<std::atomic<int>>(0); });
  ThreadPool workers(4);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(workers.submit([&pool]() {
      auto lease = pool.acquire();
      // Exclusive ownership: no other thread may touch this slot while
      // the lease is live, so the counter must go exactly 0 -> 1 -> 0.
      const int claimed = lease->fetch_add(1);
      ASSERT_EQ(claimed, 0);
      std::this_thread::yield();
      lease->fetch_sub(1);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_LE(pool.slots_created(), 64u);
  EXPECT_GE(pool.slots_created(), 1u);
}

TEST(MakeChunks, NeverEmitsTailChunkSmallerThanGrain) {
  // Regression (PR 2): [90, 100) used to come out as its own chunk of
  // size 10 < grain 30, violating the documented contract and defeating
  // SIMD-friendly bodies sized to the grain.
  for (const auto& c : detail::make_chunks(0, 100, 30, 8)) {
    EXPECT_GE(c.size(), 30u);
  }
  // A longer range whose remainder folds into the final chunk.
  const auto big = detail::make_chunks(0, 1000, 64, 4);
  std::size_t expected_begin = 0;
  for (const auto& c : big) {
    EXPECT_EQ(c.begin, expected_begin);
    EXPECT_GE(c.size(), 64u);
    expected_begin = c.end;
  }
  EXPECT_EQ(expected_begin, 1000u);
  // The one allowed short chunk: a range shorter than a single grain.
  const auto tiny = detail::make_chunks(0, 5, 30, 8);
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.front().begin, 0u);
  EXPECT_EQ(tiny.front().end, 5u);
}

}  // namespace
}  // namespace palu
