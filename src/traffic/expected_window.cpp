#include "palu/traffic/expected_window.hpp"

#include <algorithm>
#include <cmath>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/math/vexp.hpp"

namespace palu::traffic {
namespace {

constexpr double kLogHalf = -0.69314718055994531;
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;

/// Continuity-corrected Edgeworth CDF from entity moments — the cheap
/// location model the median-of-max bisection evaluates O(K · log range)
/// times.  Mirrors the central tier of math::binmass; a hard support
/// bound `upper` clamps the right tail (a Binomial can never exceed N).
double moment_cdf(double m, double mu, double sigma, double gamma3,
                  double upper) {
  if (m >= upper) return 1.0;
  if (sigma <= 0.0) return m + 0.5 >= mu ? 1.0 : 0.0;
  const double z = (m + 0.5 - mu) / sigma;
  if (z <= -40.0) return 0.0;
  if (z >= 40.0) return 1.0;
  const double phi = 0.5 * std::erfc(-z * kInvSqrt2);
  const double pdf = kInvSqrt2Pi * std::exp(-0.5 * z * z);
  return std::clamp(phi - pdf * gamma3 * (z * z - 1.0) / 6.0, 0.0, 1.0);
}

void build_csr(const std::vector<NodeId>& keys, std::size_t num_nodes,
               std::vector<std::size_t>& offsets,
               std::vector<std::size_t>& items) {
  offsets.assign(num_nodes + 1, 0);
  for (const NodeId n : keys) ++offsets[n + 1];
  for (std::size_t n = 0; n < num_nodes; ++n) offsets[n + 1] += offsets[n];
  items.resize(keys.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t j = 0; j < keys.size(); ++j) items[cursor[keys[j]]++] = j;
}

}  // namespace

ExpectedWindowEvaluator::ExpectedWindowEvaluator(PairSupportView support,
                                                 ExpectedWindowOptions opts)
    : support_(support), opts_(opts) {
  PALU_CHECK(support_.size() > 0,
             "ExpectedWindowEvaluator: empty pair support");
  PALU_CHECK(opts_.max_candidates > 0,
             "ExpectedWindowEvaluator: max_candidates must be positive");
  const std::size_t npairs = support_.size();
  NodeId max_id = 0;
  for (std::size_t i = 0; i < npairs; ++i) {
    max_id = std::max({max_id, support_.u[i], support_.v[i]});
  }
  num_nodes_ = static_cast<std::size_t>(max_id) + 1;

  // Directed links from the merged pair support, mirroring
  // next_window_counts exactly: a non-self pair splits its mass into the
  // forward (u → v) and backward (v → u) cells; a self pair is a single
  // (u, u) cell holding the whole pair weight.
  std::vector<NodeId> lsrc, ldst;
  link_q_.reserve(2 * npairs);
  lsrc.reserve(2 * npairs);
  ldst.reserve(2 * npairs);
  std::vector<NodeId> und_keys;  // endpoint incidences of non-self pairs
  std::vector<std::size_t> und_pair_of;
  for (std::size_t i = 0; i < npairs; ++i) {
    const NodeId u = support_.u[i];
    const NodeId v = support_.v[i];
    const double w = support_.weight[i];
    if (u == v) {
      lsrc.push_back(u);
      ldst.push_back(u);
      link_q_.push_back(w);
      continue;
    }
    const double f = support_.forward_prob[i];
    lsrc.push_back(u);
    ldst.push_back(v);
    link_q_.push_back(w * f);
    lsrc.push_back(v);
    ldst.push_back(u);
    link_q_.push_back(w * (1.0 - f));
    und_keys.push_back(u);
    und_pair_of.push_back(i);
    und_keys.push_back(v);
    und_pair_of.push_back(i);
  }

  node_src_mass_.assign(num_nodes_, 0.0);
  node_dst_mass_.assign(num_nodes_, 0.0);
  for (std::size_t j = 0; j < link_q_.size(); ++j) {
    node_src_mass_[lsrc[j]] += link_q_[j];
    node_dst_mass_[ldst[j]] += link_q_[j];
  }
  build_csr(lsrc, num_nodes_, src_offsets_, src_links_);
  build_csr(ldst, num_nodes_, dst_offsets_, dst_links_);
  build_csr(und_keys, num_nodes_, und_offsets_, und_pairs_);
  // build_csr indexed into und_keys; translate to pair indices.
  for (std::size_t& j : und_pairs_) j = und_pair_of[j];
}

void ExpectedWindowEvaluator::prepare(Count n_valid) {
  PALU_FAILPOINT("theory.expected_window");
  n_valid_ = n_valid;
  prepared_ = true;
  aggregates_cached_ = false;
  const std::size_t nlinks = link_q_.size();
  const std::size_t npairs = support_.size();
  link_pi_.resize(nlinks);
  pair_pi_.resize(npairs);
  if (n_valid == 0) {
    std::fill(link_pi_.begin(), link_pi_.end(), 0.0);
    std::fill(pair_pi_.begin(), pair_pi_.end(), 0.0);
  } else {
    // π = 1 − (1 − q)^N as 1 − exp(N·log1p(−q)), batched through the
    // math::vexp kernels.  q = 1 flows through exactly: log1p(−1) = −inf,
    // exp(−inf) = 0, π = 1.
    const double nd = static_cast<double>(n_valid);
    batch_.resize(nlinks);
    for (std::size_t j = 0; j < nlinks; ++j) batch_[j] = -link_q_[j];
    math::vlog1p(batch_, batch_);
    for (std::size_t j = 0; j < nlinks; ++j) batch_[j] *= nd;
    math::vexp(batch_, link_pi_);
    for (std::size_t j = 0; j < nlinks; ++j) link_pi_[j] = 1.0 - link_pi_[j];

    batch_.resize(npairs);
    for (std::size_t i = 0; i < npairs; ++i) batch_[i] = -support_.weight[i];
    math::vlog1p(batch_, batch_);
    for (std::size_t i = 0; i < npairs; ++i) batch_[i] *= nd;
    math::vexp(batch_, pair_pi_);
    for (std::size_t i = 0; i < npairs; ++i) pair_pi_[i] = 1.0 - pair_pi_[i];
  }

  src_pi_.resize(src_links_.size());
  for (std::size_t k = 0; k < src_links_.size(); ++k) {
    src_pi_[k] = link_pi_[src_links_[k]];
  }
  dst_pi_.resize(dst_links_.size());
  for (std::size_t k = 0; k < dst_links_.size(); ++k) {
    dst_pi_[k] = link_pi_[dst_links_[k]];
  }
  und_pi_.resize(und_pairs_.size());
  for (std::size_t k = 0; k < und_pairs_.size(); ++k) {
    und_pi_[k] = pair_pi_[und_pairs_[k]];
  }
}

void ExpectedWindowEvaluator::note_candidate(std::vector<Candidate>& cands,
                                             double mu, double s2, double m3,
                                             double upper) const {
  Candidate c;
  c.mu = mu;
  c.sigma = std::sqrt(std::max(0.0, s2));
  c.gamma3 = s2 > 0.0 ? m3 / (s2 * c.sigma) : 0.0;
  c.upper = upper;
  // Optimistic location score: who could plausibly own the maximum.
  const double score = c.mu + 8.0 * c.sigma;
  if (cands.size() < opts_.max_candidates) {
    cands.push_back(c);
    return;
  }
  std::size_t worst = 0;
  double worst_score = cands[0].mu + 8.0 * cands[0].sigma;
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const double s = cands[i].mu + 8.0 * cands[i].sigma;
    if (s < worst_score) {
      worst_score = s;
      worst = i;
    }
  }
  if (score > worst_score) cands[worst] = c;
}

Degree ExpectedWindowEvaluator::median_of_max(
    const std::vector<Candidate>& cands) const {
  if (cands.empty()) return 0;
  double upper = 0.0;
  for (const Candidate& c : cands) upper = std::max(upper, c.upper);
  const auto log_p_max_le = [&](double m) {
    double acc = 0.0;
    for (const Candidate& c : cands) {
      const double f = moment_cdf(m, c.mu, c.sigma, c.gamma3, c.upper);
      if (f <= 0.0) return -1e300;
      acc += std::log(f);
    }
    return acc;
  };
  // Smallest integer m with P[max ≤ m] ≥ 1/2 — the distribution's median.
  Degree lo = 0;
  auto hi = static_cast<Degree>(std::min(upper, 1.8e19));
  while (lo < hi) {
    const Degree mid = lo + (hi - lo) / 2;
    if (log_p_max_le(static_cast<double>(mid)) >= kLogHalf) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void ExpectedWindowEvaluator::fold_binomial_entities(
    std::span<const double> probs, ExpectedWindow& out,
    std::vector<Candidate>& cands) {
  const std::span<double> bins(out.bin_counts);
  const double nd = static_cast<double>(n_valid_);
  for (const double p : probs) {
    if (p <= 0.0) continue;
    out.visible_entities +=
        math::binomial_log2_bins(n_valid_, p, bins, opts_.binmass);
    const double mu = nd * p;
    const double s2 = mu * (1.0 - p);
    note_candidate(cands, mu, s2, s2 * (1.0 - 2.0 * p), nd);
  }
}

void ExpectedWindowEvaluator::fold_pb_entities(
    const std::vector<std::size_t>& offsets, const std::vector<double>& pis,
    ExpectedWindow& out, std::vector<Candidate>& cands) {
  const std::span<double> bins(out.bin_counts);
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    const std::size_t b = offsets[n];
    const std::size_t e = offsets[n + 1];
    if (b == e) continue;
    const std::span<const double> entity(pis.data() + b, e - b);
    out.visible_entities += math::poisson_binomial_log2_bins(
        entity, bins, scratch_, opts_.binmass);
    double mu = 0.0, s2 = 0.0, m3 = 0.0;
    for (const double pi : entity) {
      const double q = 1.0 - pi;
      mu += pi;
      s2 += pi * q;
      m3 += pi * q * (q - pi);
    }
    note_candidate(cands, mu, s2, m3, static_cast<double>(e - b));
  }
}

ExpectedWindow ExpectedWindowEvaluator::evaluate(Quantity q) {
  PALU_CHECK(prepared_,
             "ExpectedWindowEvaluator: prepare() must precede evaluate()");
  ExpectedWindow out;
  out.bin_counts.assign(stats::LogBinned::kMaxBins, 0.0);
  std::vector<Candidate> cands;
  cands.reserve(opts_.max_candidates);
  switch (q) {
    case Quantity::kSourcePackets:
      fold_binomial_entities(node_src_mass_, out, cands);
      break;
    case Quantity::kDestinationPackets:
      fold_binomial_entities(node_dst_mass_, out, cands);
      break;
    case Quantity::kLinkPackets:
      fold_binomial_entities(link_q_, out, cands);
      break;
    case Quantity::kSourceFanOut:
      fold_pb_entities(src_offsets_, src_pi_, out, cands);
      break;
    case Quantity::kDestinationFanIn:
      fold_pb_entities(dst_offsets_, dst_pi_, out, cands);
      break;
    case Quantity::kUndirectedDegree:
      fold_pb_entities(und_offsets_, und_pi_, out, cands);
      break;
  }
  finish(out, cands);
  return out;
}

double ExpectedWindowEvaluator::sum_visibility(
    std::span<const double> masses) {
  if (n_valid_ == 0) return 0.0;
  const double nd = static_cast<double>(n_valid_);
  batch_.resize(masses.size());
  for (std::size_t i = 0; i < masses.size(); ++i) batch_[i] = -masses[i];
  math::vlog1p(batch_, batch_);
  for (double& t : batch_) t *= nd;
  math::vexp(batch_, batch_);
  double sum = 0.0;
  for (const double s : batch_) sum += 1.0 - s;
  return sum;
}

ExpectedAggregates ExpectedWindowEvaluator::aggregates() {
  PALU_CHECK(prepared_,
             "ExpectedWindowEvaluator: prepare() must precede aggregates()");
  if (aggregates_cached_) return aggregates_cache_;
  ExpectedAggregates a;
  a.valid_packets = static_cast<double>(n_valid_);
  for (const double pi : link_pi_) a.unique_links += pi;
  a.unique_sources = sum_visibility(node_src_mass_);
  a.unique_destinations = sum_visibility(node_dst_mass_);
  std::vector<Candidate> cands;
  cands.reserve(opts_.max_candidates);
  const double nd = a.valid_packets;
  for (const double q : link_q_) {
    if (q <= 0.0) continue;
    const double mu = nd * q;
    const double s2 = mu * (1.0 - q);
    note_candidate(cands, mu, s2, s2 * (1.0 - 2.0 * q), nd);
  }
  a.max_link_packets = static_cast<double>(median_of_max(cands));
  aggregates_cache_ = a;
  aggregates_cached_ = true;
  return a;
}

void ExpectedWindowEvaluator::finish(ExpectedWindow& out,
                                     const std::vector<Candidate>& cands) {
  auto& bc = out.bin_counts;
  std::size_t used = bc.size();
  while (used > 0 && bc[used - 1] <= 0.0) --used;
  bc.resize(used);
  // Normalize over the folded mass itself (not visible_entities): the
  // visibility sum is exact while the folded bins carry the ladder's
  // per-entity budget, and the pooled mass must stay a unit distribution.
  double folded = 0.0;
  for (std::size_t i = 0; i < used; ++i) folded += bc[i];
  std::vector<double> mass(used, 0.0);
  if (folded > 0.0) {
    for (std::size_t i = 0; i < used; ++i) mass[i] = bc[i] / folded;
  }
  out.mass = stats::LogBinned(std::move(mass));
  out.max_value = median_of_max(cands);
  out.aggregates = aggregates();
}

}  // namespace palu::traffic
