#include "palu/traffic/assoc.hpp"

#include <algorithm>

namespace palu::traffic {

void SparseVector::set(NodeId key, double value) {
  if (value == 0.0) {
    values_.erase(key);
  } else {
    values_[key] = value;
  }
}

void SparseVector::add(NodeId key, double value) {
  if (value == 0.0) return;
  const double updated = (values_[key] += value);
  if (updated == 0.0) values_.erase(key);
}

double SparseVector::at(NodeId key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? 0.0 : it->second;
}

double SparseVector::sum() const {
  double acc = 0.0;
  for (const auto& [key, value] : values_) acc += value;
  return acc;
}

SparseVector SparseVector::zero_norm() const {
  SparseVector out;
  for (const auto& [key, value] : values_) out.set(key, 1.0);
  return out;
}

SparseVector SparseVector::plus(const SparseVector& other) const {
  SparseVector out = *this;
  for (const auto& [key, value] : other.values_) out.add(key, value);
  return out;
}

double SparseVector::dot(const SparseVector& other) const {
  const SparseVector& small =
      nnz() <= other.nnz() ? *this : other;
  const SparseVector& big = nnz() <= other.nnz() ? other : *this;
  double acc = 0.0;
  for (const auto& [key, value] : small.values_) {
    acc += value * big.at(key);
  }
  return acc;
}

std::vector<std::pair<NodeId, double>> SparseVector::sorted() const {
  std::vector<std::pair<NodeId, double>> out(values_.begin(),
                                             values_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void AssocArray::add(NodeId row, NodeId col, double value) {
  if (value == 0.0) return;
  const double updated = (cells_[{row, col}] += value);
  if (updated == 0.0) cells_.erase({row, col});
}

double AssocArray::at(NodeId row, NodeId col) const {
  const auto it = cells_.find({row, col});
  return it == cells_.end() ? 0.0 : it->second;
}

double AssocArray::sum() const {
  double acc = 0.0;
  for (const auto& [key, value] : cells_) acc += value;
  return acc;
}

AssocArray AssocArray::zero_norm() const {
  AssocArray out;
  for (const auto& [key, value] : cells_) {
    out.cells_[key] = 1.0;
  }
  return out;
}

AssocArray AssocArray::transposed() const {
  AssocArray out;
  for (const auto& [key, value] : cells_) {
    out.cells_[{key.second, key.first}] = value;
  }
  return out;
}

SparseVector AssocArray::row_sums() const {
  SparseVector out;
  for (const auto& [key, value] : cells_) out.add(key.first, value);
  return out;
}

SparseVector AssocArray::col_sums() const {
  SparseVector out;
  for (const auto& [key, value] : cells_) out.add(key.second, value);
  return out;
}

SparseVector AssocArray::multiply(const SparseVector& v) const {
  SparseVector out;
  for (const auto& [key, value] : cells_) {
    const double x = v.at(key.second);
    if (x != 0.0) out.add(key.first, value * x);
  }
  return out;
}

AssocArray AssocArray::hadamard(const AssocArray& other) const {
  const AssocArray& small = nnz() <= other.nnz() ? *this : other;
  const AssocArray& big = nnz() <= other.nnz() ? other : *this;
  AssocArray out;
  for (const auto& [key, value] : small.cells_) {
    const double x = big.at(key.first, key.second);
    if (x != 0.0) out.cells_[key] = value * x;
  }
  return out;
}

AssocArray AssocArray::plus(const AssocArray& other) const {
  AssocArray out = *this;
  for (const auto& [key, value] : other.cells_) {
    out.add(key.first, key.second, value);
  }
  return out;
}

std::vector<AssocArray::Entry> AssocArray::sorted() const {
  std::vector<Entry> out;
  out.reserve(cells_.size());
  for (const auto& [key, value] : cells_) {
    out.push_back(Entry{key.first, key.second, value});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.row < b.row || (a.row == b.row && a.col < b.col);
  });
  return out;
}

}  // namespace palu::traffic
