# Empty compiler generated dependencies file for bench_fig4_palu_families.
# This may be replaced when dependencies are built.
