// Generative sampling of PALU networks (Sections III and V).
//
// `generate_underlying` realizes the underlying network at a chosen node
// scale N: a zeta-degree core of ~C·N nodes, ~L·N leaves attached to core
// nodes, and ~U·N star hubs with Po(λ) leaves each.  `generate_observed`
// applies the Bernoulli(p) edge-retention step.  Node-id layout is
// contiguous per class so experiments can audit class membership.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/core/params.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

/// How leaves pick their core anchor.
enum class LeafAttachment {
  kPreferential,  // anchor ∝ core degree: produces "supernode leaves"
  kUniform,       // anchor uniform over core nodes
};

/// How the preferential-attachment core is realized.
enum class CoreKind {
  /// iid zeta(α) degrees wired by an erased configuration model — matches
  /// the paper's d^{−α}/ζ(α) degree law exactly for any α > 1.
  kZetaConfiguration,
  /// Dorogovtsev–Mendes–Samukhin growth (attachment ∝ degree + a) with a
  /// chosen so the asymptotic exponent is α: a genuine growth process,
  /// connected by construction, valid for α ∈ (3 − m, ∞) ∩ (2, ∞).
  kDmsGrowth,
};

struct GeneratorOptions {
  CoreKind core_kind = CoreKind::kZetaConfiguration;
  /// Cap on a single core node's sampled degree; 0 = use core size − 1.
  /// (kZetaConfiguration only.)
  Degree core_dmax = 0;
  /// Edges brought by each newcomer (kDmsGrowth only).
  NodeId dms_edges_per_node = 2;
  LeafAttachment leaf_attachment = LeafAttachment::kPreferential;
  /// Merge configuration-model fragments into one component by
  /// degree-preserving edge swaps, matching the connectedness of a true
  /// preferential-attachment core.  Without this, iid-degree pairs form
  /// spurious "unattached links" inside the core.  (kZetaConfiguration
  /// only; grown cores are connected already.)
  bool connect_core = true;
};

/// A generated underlying network with its class layout.
struct UnderlyingNetwork {
  graph::Graph graph;
  NodeId core_begin = 0, core_end = 0;  // [begin, end) core node ids
  NodeId leaf_begin = 0, leaf_end = 0;  // leaf node ids
  NodeId hub_begin = 0, hub_end = 0;    // star hub ids
  // star leaves occupy [hub_end, graph.num_nodes())

  NodeId core_size() const { return core_end - core_begin; }
  NodeId leaf_size() const { return leaf_end - leaf_begin; }
  NodeId hub_size() const { return hub_end - hub_begin; }
};

/// Realizes the underlying network at node scale N (class counts are the
/// rounded C·N, L·N, U·N; star leaves are Poisson on top of these).
/// Requires params.validate() to pass and N large enough that the core has
/// >= 2 nodes.
UnderlyingNetwork generate_underlying(const PaluParams& params, NodeId n,
                                      Rng& rng,
                                      const GeneratorOptions& opts = {});

/// Bernoulli(p = params.window) edge retention over the underlying graph.
graph::Graph generate_observed(const UnderlyingNetwork& underlying,
                               const PaluParams& params, Rng& rng);

/// Convenience: underlying + observed in one step, returning the observed
/// degree histogram (degree-0 nodes dropped, as capture cannot see them).
stats::DegreeHistogram sample_observed_degrees(
    const PaluParams& params, NodeId n, Rng& rng,
    const GeneratorOptions& opts = {});

}  // namespace palu::core
