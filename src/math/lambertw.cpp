#include "palu/math/lambertw.hpp"

#include <cmath>

#include "palu/common/error.hpp"

namespace palu::math {
namespace {

// −1/e rounded to double (the true branch point is ~5.6e-18 below this).
constexpr double kBranchPoint = -0.36787944117144233;

// Starting value accurate to a few percent everywhere on [−1/e, ∞); Halley
// is cubically convergent, so two to four iterations reach ~1 ulp.
double initial_guess(double x) {
  if (x > 2.0) {
    // Asymptotic: W = L1 − L2 + L2/L1 + O((L2/L1)²), L1 = ln x, L2 = ln L1.
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    return l1 - l2 + l2 / l1;
  }
  if (x >= -0.30) {
    // Padé-flavoured start built from the Taylor series W = x − x² + …;
    // x/(1+x) matches both leading terms and stays in (−1, ∞).
    return x / (1.0 + x);
  }
  // Branch-point series in p = √(2(e·x + 1)):
  //   W = −1 + p − p²/3 + 11p³/72 − 43p⁴/540 + O(p⁵).
  constexpr double kE = 2.718281828459045235;
  const double z = std::fma(kE, x, 1.0);
  const double p = std::sqrt(std::max(0.0, 2.0 * z));
  return -1.0 +
         p * (1.0 + p * (-1.0 / 3.0 + p * (11.0 / 72.0 - p * 43.0 / 540.0)));
}

}  // namespace

double lambert_w0(double x) {
  if (std::isnan(x)) return x;
  if (x < kBranchPoint) {
    // Allow rounding noise around the branch point itself (|slack| a few
    // ulp); true out-of-domain arguments are a caller error.
    PALU_CHECK(x >= kBranchPoint - 4e-16,
               "lambert_w0: requires x >= -1/e (real branch)");
    return -1.0;
  }
  if (x == 0.0) return x;  // preserves ±0
  if (std::isinf(x)) return x;

  double w = initial_guess(x);
  // Near the branch point the Halley denominator e^w(w+1) − … vanishes;
  // the quartic branch-point series above is already ~p⁵ ≈ 1e-15 accurate
  // there, so return it directly.
  if (w + 1.0 < 1e-3) return w;

  // The guesses above are within a few percent everywhere on the branch and
  // Halley is cubically convergent, so eight iterations are far more than
  // full double precision; the early-out catches the usual 3-4 step
  // convergence (a pure |Δ| threshold can limit-cycle on the last bit).
  for (int iter = 0; iter < 8; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    // Halley: w ← w − f / (e^w(w+1) − (w+2)f / (2w+2)).
    const double denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
    const double next = w - f / denom;
    if (!std::isfinite(next)) break;
    const double step = std::abs(next - w);
    w = next;
    if (step <= 1e-12 * (1.0 + std::abs(next))) break;  // next pass is ≤ ulp
  }
  return w;
}

}  // namespace palu::math
