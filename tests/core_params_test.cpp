// Unit tests for palu/core params: the Section III-A constraint and domains.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/params.hpp"
#include "palu/core/scenarios.hpp"

namespace palu::core {
namespace {

TEST(PaluParams, SolveHubsSatisfiesConstraint) {
  const PaluParams p = PaluParams::solve_hubs(
      /*lambda=*/2.0, /*core=*/0.4, /*leaves=*/0.3, /*alpha=*/2.2,
      /*window=*/0.5);
  EXPECT_NEAR(p.constraint_residual(), 0.0, 1e-12);
  EXPECT_NO_THROW(p.validate());
  // U·(1 + λ − e^{−λ}) must absorb exactly the remaining 0.3.
  EXPECT_NEAR(p.hubs * (1.0 + 2.0 - std::exp(-2.0)), 0.3, 1e-12);
}

TEST(PaluParams, ConstraintResidualDetectsDrift) {
  PaluParams p = PaluParams::solve_hubs(1.0, 0.5, 0.2, 2.0, 1.0);
  p.core += 0.05;
  EXPECT_NEAR(p.constraint_residual(), 0.05, 1e-12);
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(PaluParams, ValidateRejectsOutOfDomain) {
  const PaluParams base = PaluParams::solve_hubs(1.0, 0.5, 0.2, 2.0, 0.8);
  {
    PaluParams p = base;
    p.lambda = -0.1;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    PaluParams p = base;
    p.lambda = 25.0;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    PaluParams p = base;
    p.alpha = 0.9;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    PaluParams p = base;
    p.window = 0.0;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
  {
    PaluParams p = base;
    p.window = 1.5;
    EXPECT_THROW(p.validate(), InvalidArgument);
  }
}

TEST(PaluParams, SolveHubsRejectsOverfullCoreAndLeaves) {
  EXPECT_THROW(PaluParams::solve_hubs(1.0, 0.7, 0.3, 2.0, 1.0),
               InvalidArgument);
}

TEST(PaluParams, ZeroLambdaIsRejectedBySolveHubs) {
  // At λ = 0 the star mass 1 + λ − e^{−λ} vanishes (hubs are invisible
  // isolates), so no finite U can absorb the remaining node mass.
  EXPECT_THROW(PaluParams::solve_hubs(0.0, 0.5, 0.2, 2.0, 1.0), Error);
}

TEST(PaluParams, AtWindowChangesOnlyP) {
  const PaluParams p = PaluParams::solve_hubs(2.0, 0.4, 0.3, 2.5, 0.25);
  const PaluParams q = p.at_window(0.75);
  EXPECT_DOUBLE_EQ(q.window, 0.75);
  EXPECT_DOUBLE_EQ(q.lambda, p.lambda);
  EXPECT_DOUBLE_EQ(q.core, p.core);
  EXPECT_DOUBLE_EQ(q.leaves, p.leaves);
  EXPECT_DOUBLE_EQ(q.hubs, p.hubs);
  EXPECT_DOUBLE_EQ(q.alpha, p.alpha);
  EXPECT_THROW(p.at_window(0.0), InvalidArgument);
}

TEST(Scenarios, AllPresetsAreNormalized) {
  for (const auto& params :
       {scenarios::backbone(), scenarios::leafy_site(),
        scenarios::bot_heavy(), scenarios::mixed()}) {
    EXPECT_NO_THROW(params.validate());
    EXPECT_NEAR(params.constraint_residual(), 0.0, 1e-12);
  }
}

TEST(Scenarios, ArchetypesAreOrderedByStarLeafMass) {
  // Expected star-leaf node mass U·λ ranks backbone < leafy < bot-heavy.
  const auto star_leaves = [](const PaluParams& p) {
    return p.hubs * p.lambda;
  };
  EXPECT_LT(star_leaves(scenarios::backbone()),
            star_leaves(scenarios::leafy_site()));
  EXPECT_LT(star_leaves(scenarios::leafy_site()),
            star_leaves(scenarios::bot_heavy()));
}

class ConstraintSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ConstraintSweep, SolveHubsAlwaysNormalizes) {
  const auto [lambda, core, leaves] = GetParam();
  const PaluParams p = PaluParams::solve_hubs(lambda, core, leaves, 2.0, 0.5);
  EXPECT_NEAR(p.constraint_residual(), 0.0, 1e-12);
  EXPECT_GT(p.hubs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConstraintSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 5.0, 19.0),
                       ::testing::Values(0.1, 0.45, 0.8),
                       ::testing::Values(0.05, 0.15)));

}  // namespace
}  // namespace palu::core
