// Deep accuracy tests for the math substrate: identity-based checks that
// need no memorized constants, plus a standard optimizer battery.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "palu/common/error.hpp"
#include "palu/fit/brent.hpp"
#include "palu/fit/levmar.hpp"
#include "palu/fit/nelder_mead.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/incomplete_gamma.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu {
namespace {

// ------------------------------------------------------ gamma identities

TEST(GammaIdentities, RecurrenceAcrossRandomArguments) {
  // ln Γ(x+1) = ln Γ(x) + ln x.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = 0.05 + 30.0 * rng.uniform();
    EXPECT_NEAR(math::log_gamma(x + 1.0),
                math::log_gamma(x) + std::log(x),
                1e-11 * (1.0 + std::abs(math::log_gamma(x))))
        << "x=" << x;
  }
}

TEST(GammaIdentities, LegendreDuplication) {
  // Γ(2x) = Γ(x)·Γ(x+1/2)·2^{2x−1}/√π, in log form.
  for (double x : {0.3, 0.75, 1.0, 2.5, 7.0, 19.5}) {
    const double lhs = math::log_gamma(2.0 * x);
    const double rhs = math::log_gamma(x) + math::log_gamma(x + 0.5) +
                       (2.0 * x - 1.0) * std::log(2.0) -
                       0.5 * std::log(std::numbers::pi);
    EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::abs(lhs))) << "x=" << x;
  }
}

TEST(GammaIdentities, ReflectionAcrossSmallArguments) {
  // Γ(x)Γ(1−x) = π / sin(πx) for x ∈ (0, 1).
  for (double x : {0.05, 0.2, 0.35, 0.45}) {
    const double lhs = math::log_gamma(x) + math::log_gamma(1.0 - x);
    const double rhs =
        std::log(std::numbers::pi / std::sin(std::numbers::pi * x));
    EXPECT_NEAR(lhs, rhs, 1e-11) << "x=" << x;
  }
}

TEST(IncompleteGammaIdentities, RecurrenceInA) {
  // P(a+1, x) = P(a, x) − x^a e^{−x}/Γ(a+1).
  for (double a : {0.5, 1.0, 3.0, 8.0}) {
    for (double x : {0.2, 1.0, 4.0, 20.0}) {
      const double correction =
          std::exp(a * std::log(x) - x - math::log_gamma(a + 1.0));
      EXPECT_NEAR(math::regularized_gamma_p(a + 1.0, x),
                  math::regularized_gamma_p(a, x) - correction, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGammaIdentities, ChiSquareAdditivityViaConvolution) {
  // χ²₂ survival is exactly e^{−x/2}; χ²₄(x) relates by the Erlang form
  // Q(2, x/2) = e^{−x/2}(1 + x/2).
  for (double x : {0.5, 2.0, 7.0, 18.0}) {
    EXPECT_NEAR(math::chi_squared_survival(x, 2.0), std::exp(-0.5 * x),
                1e-12);
    EXPECT_NEAR(math::chi_squared_survival(x, 4.0),
                std::exp(-0.5 * x) * (1.0 + 0.5 * x), 1e-12);
  }
}

// ------------------------------------------------------ zeta identities

TEST(ZetaIdentities, EulerProductSpotCheck) {
  // ζ(s)·Π_{p ≤ 97} (1 − p^{−s}) ≈ 1 for s where the tail primes are
  // negligible (large s).
  const double s = 8.0;
  double prod = math::riemann_zeta(s);
  for (const int p :
       {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
        61, 67, 71, 73, 79, 83, 89, 97}) {
    prod *= 1.0 - std::pow(static_cast<double>(p), -s);
  }
  EXPECT_NEAR(prod, 1.0, 1e-10);
}

TEST(ZetaIdentities, DirichletEtaRelation) {
  // η(s) = Σ (−1)^{n−1} n^{−s} = (1 − 2^{1−s})·ζ(s).
  for (double s : {1.5, 2.0, 3.0, 5.0}) {
    double eta = 0.0;
    for (int n = 1; n < 500000; ++n) {
      eta += (n % 2 == 1 ? 1.0 : -1.0) * std::pow(n, -s);
    }
    EXPECT_NEAR(eta, (1.0 - std::pow(2.0, 1.0 - s)) *
                         math::riemann_zeta(s),
                1e-6)
        << "s=" << s;
  }
}

TEST(ZetaIdentities, HurwitzRationalSplitting) {
  // ζ(s, 1/2) + ζ(s, 1) = 2^s ζ(s)  (split over even/odd integers).
  for (double s : {1.4, 2.0, 3.3}) {
    EXPECT_NEAR(math::hurwitz_zeta(s, 0.5) + math::hurwitz_zeta(s, 1.0),
                std::pow(2.0, s) * math::riemann_zeta(s),
                1e-10 * std::pow(2.0, s) * math::riemann_zeta(s))
        << "s=" << s;
  }
}

// --------------------------------------------------- optimizer battery

TEST(OptimizerBattery, BrentRootsOfTranscendentals) {
  // x = cos(x): Dottie number ≈ 0.7390851332151607.
  const double dottie = fit::brent_root(
      [](double x) { return x - std::cos(x); }, 0.0, 1.0);
  EXPECT_NEAR(dottie, 0.7390851332151607, 1e-10);
  // Lambert W(1): x·e^x = 1 at x ≈ 0.5671432904097838.
  const double omega = fit::brent_root(
      [](double x) { return x * std::exp(x) - 1.0; }, 0.0, 1.0);
  EXPECT_NEAR(omega, 0.5671432904097838, 1e-10);
}

TEST(OptimizerBattery, NelderMeadBooth) {
  const auto booth = [](const std::vector<double>& v) {
    const double a = v[0] + 2.0 * v[1] - 7.0;
    const double b = 2.0 * v[0] + v[1] - 5.0;
    return a * a + b * b;
  };
  const auto res = fit::nelder_mead(booth, {0.0, 0.0});
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 3.0, 1e-5);
}

TEST(OptimizerBattery, NelderMeadBeale) {
  const auto beale = [](const std::vector<double>& v) {
    const double x = v[0], y = v[1];
    const double a = 1.5 - x + x * y;
    const double b = 2.25 - x + x * y * y;
    const double c = 2.625 - x + x * y * y * y;
    return a * a + b * b + c * c;
  };
  const auto res = fit::nelder_mead(beale, {1.0, 1.0});
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.x[1], 0.5, 1e-3);
}

TEST(OptimizerBattery, NelderMeadHimmelblauReachesAZero) {
  const auto himmelblau = [](const std::vector<double>& v) {
    const double x = v[0], y = v[1];
    const double a = x * x + y - 11.0;
    const double b = x + y * y - 7.0;
    return a * a + b * b;
  };
  // Four global minima, all with value 0; any is acceptable.
  const auto res = fit::nelder_mead(himmelblau, {0.0, 0.0});
  EXPECT_LT(res.value, 1e-8);
}

TEST(OptimizerBattery, LevMarFitsSinusoid) {
  // y = A·sin(ω t + φ) with A=1.5, ω=2, φ=0.5.
  std::vector<double> t, y;
  for (int i = 0; i < 60; ++i) {
    t.push_back(0.1 * i);
    y.push_back(1.5 * std::sin(2.0 * 0.1 * i + 0.5));
  }
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      r[i] = p[0] * std::sin(p[1] * t[i] + p[2]) - y[i];
    }
    return r;
  };
  const auto res = fit::levenberg_marquardt(residuals, {1.0, 1.8, 0.0});
  EXPECT_NEAR(res.x[0], 1.5, 1e-5);
  EXPECT_NEAR(res.x[1], 2.0, 1e-5);
  EXPECT_NEAR(res.x[2], 0.5, 1e-5);
}

TEST(OptimizerBattery, LevMarPowellSingular) {
  // Powell's singular function: minimum 0 at the origin with a singular
  // Hessian — a classic stress test for damping.
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{
        p[0] + 10.0 * p[1], std::sqrt(5.0) * (p[2] - p[3]),
        (p[1] - 2.0 * p[2]) * (p[1] - 2.0 * p[2]),
        std::sqrt(10.0) * (p[0] - p[3]) * (p[0] - p[3])};
  };
  const auto res =
      fit::levenberg_marquardt(residuals, {3.0, -1.0, 0.0, 1.0});
  EXPECT_LT(res.chi_squared, 1e-8);
}

TEST(OptimizerBattery, BrentMinimizeZetaLikelihoodShape) {
  // The 1-D negative log-likelihood used by the power-law MLE is convex
  // in α; Brent must land on the stationary point where the derivative
  // flips sign.
  const double sum_log_d = 0.9;  // per-observation Σ ln d
  const auto nll = [&](double alpha) {
    return std::log(math::riemann_zeta(alpha)) + alpha * sum_log_d;
  };
  const double alpha_star = fit::brent_minimize(nll, 1.05, 20.0);
  const double h = 1e-5;
  EXPECT_LT(nll(alpha_star), nll(alpha_star + 10.0 * h));
  EXPECT_LT(nll(alpha_star), nll(alpha_star - 10.0 * h));
}

}  // namespace
}  // namespace palu
