// Batched exp / log1p polynomial-table kernels for per-edge visibility math.
//
// The expectation path of the sweep evaluates (1 − q_e)^{N_V} = exp(N_V ·
// log1p(−q_e)) once per directed link per window size.  Calling libm per
// element costs a call + branch per value; these kernels process contiguous
// spans with a branch-light inner loop the compiler can unroll:
//
//   vexp:   e^x = 2^k · T[j] · P(r), where x = (64k + j)·(ln2/64) + r,
//           T a 64-entry 2^{j/64} table and P a degree-5 Taylor kernel on
//           |r| ≤ ln2/128 (truncation ≈ 2e-17 relative);
//   vlog1p: 2·atanh(s) with s = x/(2+x) for |x| ≤ 0.5, else an exact
//           (Sterbenz for x ∈ [−1, −0.5]) 1+x reduction through frexp.
//
// Accuracy is a gated budget, not a hope: kVexpUlpBudget pins the maximum
// ulp error against libm over a fixed probe grid.  The budget is enforced
// twice — by a ctest (tests/math_accuracy_test.cpp) and by a first-use
// runtime self-check that silently routes both kernels through libm if a
// platform's arithmetic falls outside the budget.  Inputs outside the
// kernels' reduced ranges (overflow, NaN, x ≤ −1) always take libm.
#pragma once

#include <span>

namespace palu::math {

/// Maximum allowed ulp error of either kernel vs. libm on the probe grid.
/// Measured values are ~1–2 ulp; the budget leaves headroom for FMA vs.
/// non-FMA contraction differences across compilers.
inline constexpr double kVexpUlpBudget = 8.0;

/// out[i] = exp(x[i]).  out.size() must equal x.size(); spans may alias
/// exactly (out == x) but must not partially overlap.
void vexp(std::span<const double> x, std::span<double> out);

/// out[i] = log1p(x[i]).  Same span contract as vexp.
void vlog1p(std::span<const double> x, std::span<double> out);

/// Max ulp error of the exp kernel vs. std::exp over the probe grid.
double vexp_probe_max_ulp();

/// Max ulp error of the log1p kernel vs. std::log1p over the probe grid.
double vlog1p_probe_max_ulp();

/// False when the first-use self-check measured a probe error above
/// kVexpUlpBudget and the kernels fell back to libm wholesale.
bool vexp_kernel_active();

}  // namespace palu::math
