#include "analyze/token.hpp"

namespace palu::analyze {
namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// The splice-resolved character stream: `chars[i]` is the i-th character
// after removing every backslash-newline pair, and `line[i]`/`col[i]`
// remember where it came from.  Raw strings are the one place the C++
// standard un-splices; none of the rules care about a raw string's exact
// contents, so the approximation is harmless there.
struct Stream {
  std::string chars;
  std::vector<std::size_t> line;
  std::vector<std::size_t> col;
  std::size_t num_lines = 0;

  explicit Stream(const std::string& text) {
    std::size_t ln = 1, co = 1;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      // Backslash-newline (optionally with a carriage return) splices the
      // next physical line onto this logical one.
      if (c == '\\') {
        std::size_t j = i + 1;
        if (j < text.size() && text[j] == '\r') ++j;
        if (j < text.size() && text[j] == '\n') {
          i = j;
          ++ln;
          co = 1;
          continue;
        }
      }
      chars.push_back(c);
      line.push_back(ln);
      col.push_back(co);
      if (c == '\n') {
        ++ln;
        co = 1;
      } else {
        ++co;
      }
    }
    num_lines = ln;
  }
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : s_(text) {}

  TokenizedFile run() {
    TokenizedFile out;
    out.num_lines = s_.num_lines;
    bool line_start = true;       // only whitespace/comments so far
    bool after_include = false;   // the previous code token was #include
    const std::string& c = s_.chars;
    std::size_t i = 0;
    while (i < c.size()) {
      const char ch = c[i];
      if (ch == '\n') {
        line_start = true;
        after_include = false;
        ++i;
        continue;
      }
      if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' ||
          ch == '\f') {
        ++i;
        continue;
      }
      if (ch == '/' && i + 1 < c.size() && c[i + 1] == '/') {
        i = lex_line_comment(i, &out);
        continue;
      }
      if (ch == '/' && i + 1 < c.size() && c[i + 1] == '*') {
        i = lex_block_comment(i, &out);
        continue;
      }
      if (ch == '#' && line_start) {
        i = lex_directive(i, &out, &after_include);
        line_start = false;
        continue;
      }
      line_start = false;
      if (after_include && ch == '<') {
        i = lex_header_name(i, &out);
        after_include = false;
        continue;
      }
      after_include = false;
      if (ch == '"') {
        i = lex_string(i, &out);
        continue;
      }
      if (ch == '\'') {
        i = lex_char(i, &out);
        continue;
      }
      if (digit(ch) || (ch == '.' && i + 1 < c.size() && digit(c[i + 1]))) {
        i = lex_number(i, &out);
        continue;
      }
      if (ident_start(ch)) {
        i = lex_ident_or_raw_string(i, &out);
        continue;
      }
      i = lex_punct(i, &out);
    }
    return out;
  }

 private:
  Token at(std::size_t i, TokKind kind) const {
    Token t;
    t.kind = kind;
    t.line = s_.line[i];
    t.col = s_.col[i];
    return t;
  }

  std::size_t lex_line_comment(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kComment);
    const std::string& c = s_.chars;
    while (i < c.size() && c[i] != '\n') t.text.push_back(c[i++]);
    out->comments.push_back(std::move(t));
    return i;
  }

  std::size_t lex_block_comment(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kComment);
    const std::string& c = s_.chars;
    t.text += "/*";
    i += 2;
    while (i < c.size()) {
      if (c[i] == '*' && i + 1 < c.size() && c[i + 1] == '/') {
        t.text += "*/";
        i += 2;
        break;
      }
      t.text.push_back(c[i++]);
    }
    out->comments.push_back(std::move(t));
    return i;
  }

  std::size_t lex_directive(std::size_t i, TokenizedFile* out,
                            bool* after_include) {
    Token t = at(i, TokKind::kDirective);
    const std::string& c = s_.chars;
    t.text.push_back(c[i++]);  // '#'
    while (i < c.size() && (c[i] == ' ' || c[i] == '\t')) ++i;
    while (i < c.size() && ident_char(c[i])) t.text.push_back(c[i++]);
    *after_include = t.text == "#include";
    out->code.push_back(std::move(t));
    return i;
  }

  std::size_t lex_header_name(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kHeaderName);
    const std::string& c = s_.chars;
    ++i;  // '<'
    while (i < c.size() && c[i] != '>' && c[i] != '\n') {
      t.text.push_back(c[i++]);
    }
    if (i < c.size() && c[i] == '>') ++i;
    out->code.push_back(std::move(t));
    return i;
  }

  std::size_t lex_string(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kString);
    const std::string& c = s_.chars;
    ++i;  // opening quote
    while (i < c.size() && c[i] != '"' && c[i] != '\n') {
      if (c[i] == '\\' && i + 1 < c.size()) {
        t.text.push_back(c[i++]);  // keep the escape verbatim
      }
      t.text.push_back(c[i++]);
    }
    if (i < c.size() && c[i] == '"') ++i;
    out->code.push_back(std::move(t));
    return i;
  }

  std::size_t lex_char(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kChar);
    const std::string& c = s_.chars;
    ++i;  // opening quote
    while (i < c.size() && c[i] != '\'' && c[i] != '\n') {
      if (c[i] == '\\' && i + 1 < c.size()) {
        t.text.push_back(c[i++]);
      }
      t.text.push_back(c[i++]);
    }
    if (i < c.size() && c[i] == '\'') ++i;
    out->code.push_back(std::move(t));
    return i;
  }

  std::size_t lex_number(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kNumber);
    const std::string& c = s_.chars;
    while (i < c.size()) {
      const char ch = c[i];
      if (ident_char(ch) || ch == '.') {
        t.text.push_back(ch);
        // Exponent signs belong to the number: 1e+3, 0x1p-4.
        if ((ch == 'e' || ch == 'E' || ch == 'p' || ch == 'P') &&
            i + 1 < c.size() && (c[i + 1] == '+' || c[i + 1] == '-')) {
          t.text.push_back(c[++i]);
        }
        ++i;
        continue;
      }
      // Digit separator: 1'000'000.
      if (ch == '\'' && i + 1 < c.size() && ident_char(c[i + 1])) {
        t.text.push_back(ch);
        ++i;
        continue;
      }
      break;
    }
    out->code.push_back(std::move(t));
    return i;
  }

  // True for the exact raw-string prefixes: R, LR, uR, UR, u8R.
  static bool raw_prefix(const std::string& id) {
    return id == "R" || id == "LR" || id == "uR" || id == "UR" ||
           id == "u8R";
  }

  std::size_t lex_ident_or_raw_string(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kIdent);
    const std::string& c = s_.chars;
    while (i < c.size() && ident_char(c[i])) t.text.push_back(c[i++]);
    if (i < c.size() && c[i] == '"' && raw_prefix(t.text)) {
      // Raw string: R"delim( ... )delim", possibly spanning lines.
      t.kind = TokKind::kString;
      t.text.clear();
      ++i;  // opening quote
      std::string delim;
      while (i < c.size() && c[i] != '(' && delim.size() < 18) {
        delim.push_back(c[i++]);
      }
      if (i < c.size()) ++i;  // '('
      const std::string close = ")" + delim + "\"";
      const std::size_t end = c.find(close, i);
      if (end == std::string::npos) {
        t.text.assign(c, i, c.size() - i);
        i = c.size();
      } else {
        t.text.assign(c, i, end - i);
        i = end + close.size();
      }
    } else if (i < c.size() && c[i] == '"' &&
               (t.text == "L" || t.text == "u" || t.text == "U" ||
                t.text == "u8")) {
      // Encoding prefix on an ordinary string: drop the prefix token and
      // lex the literal itself.
      return lex_string(i, out);
    }
    out->code.push_back(std::move(t));
    return i;
  }

  std::size_t lex_punct(std::size_t i, TokenizedFile* out) {
    Token t = at(i, TokKind::kPunct);
    const std::string& c = s_.chars;
    const char ch = c[i];
    const char nx = i + 1 < c.size() ? c[i + 1] : '\0';
    if ((ch == ':' && nx == ':') || (ch == '-' && nx == '>')) {
      t.text.assign(1, ch);
      t.text.push_back(nx);
      i += 2;
    } else {
      t.text.assign(1, ch);
      ++i;
    }
    out->code.push_back(std::move(t));
    return i;
  }

  Stream s_;
};

}  // namespace

TokenizedFile tokenize(const std::string& text) {
  return Lexer(text).run();
}

}  // namespace palu::analyze
