file(REMOVE_RECURSE
  "CMakeFiles/gof_bootstrap_test.dir/gof_bootstrap_test.cpp.o"
  "CMakeFiles/gof_bootstrap_test.dir/gof_bootstrap_test.cpp.o.d"
  "gof_bootstrap_test"
  "gof_bootstrap_test.pdb"
  "gof_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gof_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
