// The paper's qualitative claims, each asserted end to end.
//
// One test per claim, named after where the paper makes it.  These are
// the statements EXPERIMENTS.md reports on; a regression in any of them
// means the library no longer reproduces the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/palu.hpp"

namespace palu {
namespace {

// Section II: "webcrawls naturally sample the supernodes ... accurately
// fit at large d by single-parameter power-law models", while streaming
// windows reveal leaves and unattached links that deviate at small d.
TEST(PaperClaims, SectionII_CrawlsSeePowerLawsWindowsSeeDeviations) {
  const auto params = core::scenarios::mixed();
  Rng rng(1);
  const auto net = core::generate_underlying(params, 200000, rng);
  const auto trunk =
      stats::DegreeHistogram::from_degrees(net.graph.degrees());
  const auto crawl = graph::bfs_crawl(rng, net.graph, 50000);
  const auto crawl_view = graph::crawl_view_degrees(net.graph, crawl);

  // Trunk view: ZM beats zeta decisively (the δ offset earns its keep).
  const auto zm_trunk = fit::fit_zipf_mandelbrot_model(trunk);
  const auto zeta_trunk = fit::fit_zeta_model(trunk);
  const auto v_trunk = fit::vuong_test(*zm_trunk, *zeta_trunk, trunk);
  EXPECT_GT(v_trunk.statistic, 3.0);

  // Crawl view: the improvement shrinks by an order of magnitude.
  const auto zm_crawl = fit::fit_zipf_mandelbrot_model(crawl_view);
  const auto zeta_crawl = fit::fit_zeta_model(crawl_view);
  const auto v_crawl = fit::vuong_test(*zm_crawl, *zeta_crawl, crawl_view);
  EXPECT_LT(v_crawl.statistic, 0.5 * v_trunk.statistic);
}

// Section II-B: "The model exponent α has a larger impact on the model at
// large values of d while the model offset δ has a larger impact at small
// values of d and in particular at d = 1."
TEST(PaperClaims, SectionIIB_AlphaControlsTailDeltaControlsHead) {
  // Normalization couples all pmf values, so the claim is about *shape*:
  // the tail log-slope belongs to α (δ cannot move it) and the head
  // ratio p(1)/p(2) moves far more with δ than the tail slope does.
  const Degree dmax = 1u << 14;
  const auto tail_slope = [](const fit::ZipfMandelbrot& zm) {
    return std::log2(zm.pmf(2048) / zm.pmf(4096));
  };
  const auto head_ratio = [](const fit::ZipfMandelbrot& zm) {
    return zm.pmf(1) / zm.pmf(2);
  };
  const fit::ZipfMandelbrot base(2.0, 1.0, dmax);
  const fit::ZipfMandelbrot alpha_up(2.4, 1.0, dmax);
  const fit::ZipfMandelbrot delta_up(2.0, 4.0, dmax);
  // α moves the tail slope by ~0.4; δ leaves it essentially untouched.
  EXPECT_NEAR(tail_slope(alpha_up) - tail_slope(base), 0.4, 0.01);
  EXPECT_NEAR(tail_slope(delta_up) - tail_slope(base), 0.0, 0.01);
  // δ reshapes the head ratio far more than α does.
  const double head_shift_delta =
      std::abs(head_ratio(delta_up) - head_ratio(base));
  const double head_shift_alpha =
      std::abs(head_ratio(alpha_up) - head_ratio(base));
  EXPECT_GT(head_shift_delta, 2.0 * head_shift_alpha);
}

// Section III: "the parameters λ, C, L, U, and α should be the same
// regardless of the window size ... the only parameter that will change
// is p."
TEST(PaperClaims, SectionIII_OnlyPChangesWithWindowSize) {
  const double lambda = 6.0;
  Rng rng_a(2), rng_b(3);
  const auto small = core::PaluParams::solve_hubs(lambda, 0.35, 0.2, 2.2,
                                                  0.35);
  const auto large = small.at_window(0.85);
  const auto fit_small = core::fit_palu(
      core::sample_observed_degrees(small, 400000, rng_a));
  const auto fit_large = core::fit_palu(
      core::sample_observed_degrees(large, 400000, rng_b));
  EXPECT_NEAR(fit_small.alpha, fit_large.alpha, 0.3);
  EXPECT_NEAR(fit_large.mu / fit_small.mu, 0.85 / 0.35, 0.6);
}

// Section III: "Using a directed model has a small impact on the overall
// degree distribution analysis."
TEST(PaperClaims, SectionIII_DirectedModelSmallImpact) {
  const auto params = core::scenarios::mixed().at_window(0.8);
  Rng rng(4);
  const auto net = core::generate_underlying(params, 200000, rng);
  const auto obs = core::observe_directed(net, params, rng);
  const double a_in =
      fit::fit_power_law_fixed_xmin(obs.in_histogram(), 8).alpha;
  const double a_und =
      fit::fit_power_law_fixed_xmin(obs.total_histogram(), 8).alpha;
  EXPECT_NEAR(a_in, a_und, 0.3);
}

// Section IV-A: "a log plot will have the slope of the regression line as
// 1 − α, and not −α as it would be in the non-interval case."
TEST(PaperClaims, SectionIVA_PooledSlopeIsOneMinusAlpha) {
  const auto params = core::PaluParams::solve_hubs(2.0, 0.5, 0.2, 2.6,
                                                   0.9);
  const auto pooled = core::pooled_theory(params, 26);
  std::vector<double> x, y;
  for (std::uint32_t i = 12; i < 24; ++i) {
    x.push_back(std::log(static_cast<double>(Degree{1} << i)));
    y.push_back(std::log(pooled[i]));
  }
  const auto slope = fit::linear_regression(x, y).slope;
  EXPECT_NEAR(slope, 1.0 - params.alpha, 0.03);
  EXPECT_GT(std::abs(slope - (-params.alpha)), 0.9);
}

// Section IV-B: the moment-ratio estimate of the bump parameter "reduces
// the estimate to one with substantially less variance" than point-wise
// estimates.
TEST(PaperClaims, SectionIVB_MomentRatioHasLessVariance) {
  const auto params = core::PaluParams::solve_hubs(5.0, 0.35, 0.2, 2.2,
                                                   0.8);
  std::vector<double> moment, pointwise;
  for (int rep = 0; rep < 12; ++rep) {
    Rng rng(100 + rep * 1013);
    const auto h = core::sample_observed_degrees(params, 100000, rng);
    const auto dist = stats::EmpiricalDistribution::from_histogram(h);
    const auto fit = core::fit_palu(h);
    moment.push_back(fit.mu);
    pointwise.push_back(
        core::estimate_mu_pointwise(dist, fit.c, fit.alpha));
  }
  const auto var_of = [](const std::vector<double>& xs) {
    double mean = 0.0;
    for (const double v : xs) mean += v;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (const double v : xs) var += (v - mean) * (v - mean);
    return var / static_cast<double>(xs.size() - 1);
  };
  EXPECT_LT(var_of(moment), var_of(pointwise));
}

// Section VI / Fig 4: "For any given power law exponent α and offset
// parameter δ, the Zipf–Mandelbrot distribution can be well-approximated
// by Equation (5) by varying r."
TEST(PaperClaims, SectionVI_PaluFamilyApproachesZm) {
  const Degree dmax = 1u << 12;
  for (const double alpha : {2.0, 2.5, 3.0}) {
    const auto fit = core::fit_r_to_zipf_mandelbrot(alpha, 0.5, dmax);
    EXPECT_LT(fit.sse, 1e-2) << "alpha=" << alpha;
  }
}

// Figure 3 upper-right: a leaf/unattached-heavy site deviates from any
// single modified-ZM law far more than ordinary sites do.
TEST(PaperClaims, Fig3_BotHeavyBreaksZipfMandelbrot) {
  const auto fit_quality = [](const core::PaluParams& params,
                              std::uint64_t seed) {
    Rng rng(seed);
    const auto h = core::sample_observed_degrees(params, 200000, rng);
    const auto pooled = stats::LogBinned::from_histogram(h);
    const auto zm = fit::fit_zipf_mandelbrot(pooled, h.max_degree());
    const auto model =
        fit::ZipfMandelbrot(zm.alpha, zm.delta, h.max_degree()).pooled();
    double worst = 0.0;
    for (std::size_t i = 0; i < pooled.num_bins(); ++i) {
      const double m = i < model.num_bins() ? model[i] : 0.0;
      worst = std::max(worst, std::abs(pooled[i] - m));
    }
    return worst;
  };
  const double ordinary =
      fit_quality(core::scenarios::backbone().at_window(0.8), 5);
  const double botty =
      fit_quality(core::scenarios::bot_heavy().at_window(0.8), 6);
  EXPECT_GT(botty, 3.0 * ordinary);
}

// Section V: isolated hubs "cannot be seen by examining traffic between
// nodes", yet their density is recoverable from the visible fit.
TEST(PaperClaims, SectionV_InvisibleHubsAreRecoverable) {
  const auto params = core::PaluParams::solve_hubs(5.0, 0.35, 0.15, 2.3,
                                                   0.8);
  Rng rng(7);
  const auto h = core::sample_observed_degrees(params, 400000, rng);
  const auto est = core::estimate_isolated(core::fit_palu(h),
                                           params.window);
  EXPECT_NEAR(est.implied_lambda, params.lambda, 0.25 * params.lambda);
}

}  // namespace
}  // namespace palu
