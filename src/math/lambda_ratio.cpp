#include "palu/math/lambda_ratio.hpp"

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/math/stable.hpp"

namespace palu::math {

double lambda_moment_ratio(double lambda_cap) {
  PALU_CHECK(lambda_cap >= 0.0, "lambda_moment_ratio: requires Λ >= 0");
  if (lambda_cap < 1e-8) {
    // g(Λ) = 2 + Λ/3 + Λ²/18 + O(Λ³).
    return 2.0 + lambda_cap / 3.0 + lambda_cap * lambda_cap / 18.0;
  }
  const double denom = expm1_minus_x(lambda_cap);
  if (!std::isfinite(denom)) return lambda_cap;  // e^Λ overflowed: g → Λ
  return lambda_cap + lambda_cap * lambda_cap / denom;
}

double lambda_moment_ratio_derivative(double lambda_cap) {
  PALU_CHECK(lambda_cap >= 0.0,
             "lambda_moment_ratio_derivative: requires Λ >= 0");
  if (lambda_cap < 1e-6) {
    // g'(Λ) = 1/3 + Λ/9 + O(Λ²).
    return 1.0 / 3.0 + lambda_cap / 9.0;
  }
  if (lambda_cap > 40.0) {
    // D ≈ e^Λ: g' = 1 + (2Λ − Λ²)e^{-Λ} + O(Λ³e^{-2Λ}).
    return 1.0 + (2.0 - lambda_cap) * lambda_cap * std::exp(-lambda_cap);
  }
  const double d = expm1_minus_x(lambda_cap);
  const double e1 = std::expm1(lambda_cap);
  return 1.0 + 2.0 * lambda_cap / d -
         lambda_cap * lambda_cap * e1 / (d * d);
}

double invert_lambda_moment_ratio(double r) {
  // Empirical ratios come out of the excess-moment sums in estimate.cpp,
  // where cancellation can round a true r = 2 (Λ = 0) to just under 2.
  // Treat that sliver as exactly the boundary instead of rejecting it, so
  // degraded-mode fitting cannot die on rounding noise; anything further
  // below 2 is outside g's range and still a caller error.
  constexpr double kBoundarySlack = 1e-9;
  PALU_CHECK(r >= 2.0 - kBoundarySlack,
             "invert_lambda_moment_ratio: requires r >= 2");
  if (r <= 2.0) return 0.0;
  // g(Λ) ∈ [max(2, Λ), Λ + 2], so the root lies in [r − 2, r].
  double lo = std::max(0.0, r - 2.0);
  double hi = r;
  double x = 3.0 * (r - 2.0);  // first-order inverse of g ≈ 2 + Λ/3
  if (x < lo || x > hi) x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 100; ++iter) {
    const double g = lambda_moment_ratio(x);
    const double err = g - r;
    if (std::abs(err) <= 1e-13 * (1.0 + std::abs(r))) return x;
    if (err > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double dg = lambda_moment_ratio_derivative(x);
    double next = x - err / dg;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // bisect fallback
    if (next == x) return x;
    x = next;
  }
  // Newton/bisection is monotone-convergent here; reaching this means the
  // bracket collapsed to rounding noise, so the midpoint is the answer.
  if (hi - lo < 1e-9 * (1.0 + hi)) return 0.5 * (lo + hi);
  throw ConvergenceError("invert_lambda_moment_ratio: did not converge");
}

}  // namespace palu::math
