// Degree histograms: the n_t(d) of Section II-A.
//
// A histogram maps a degree (or any network count quantity d) to the number
// of nodes/links exhibiting it.  Supernode degrees can be enormous while the
// support stays sparse, so storage is a hash map with sorted snapshots on
// demand.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "palu/common/types.hpp"

namespace palu::stats {

class DegreeHistogram {
 public:
  DegreeHistogram() = default;

  /// Counts one (or `c`) observation(s) of value `d`.  d == 0 entries are
  /// accepted but excluded from distribution summaries (an unobserved node
  /// is invisible to traffic capture, per Section V).
  void add(Degree d, Count c = 1);

  /// Builds a histogram from a list of per-node degrees, dropping zeros.
  static DegreeHistogram from_degrees(std::span<const Degree> degrees);

  /// Adds every entry of `other` into this histogram.
  void merge(const DegreeHistogram& other);

  /// Number of distinct degree values with positive count.
  std::size_t support_size() const noexcept { return counts_.size(); }

  /// Σ_d n(d): total observations.
  Count total() const noexcept { return total_; }

  /// Σ_d d·n(d): total degree mass (twice the edge count for a full
  /// undirected degree histogram).
  Count weighted_total() const noexcept { return weighted_total_; }

  /// Count at a specific degree (0 if absent).
  Count at(Degree d) const;

  /// Largest degree with positive count; 0 for an empty histogram.
  Degree max_degree() const;

  bool empty() const noexcept { return counts_.empty(); }

  /// Snapshot sorted by degree ascending.
  std::vector<std::pair<Degree, Count>> sorted() const;

 private:
  std::unordered_map<Degree, Count> counts_;
  Count total_ = 0;
  Count weighted_total_ = 0;
};

}  // namespace palu::stats
