// Levenberg–Marquardt nonlinear least squares with a forward-difference
// Jacobian, solving the damped normal equations via Cholesky.
#pragma once

#include <functional>
#include <vector>

namespace palu::fit {

struct LevMarOptions {
  double initial_damping = 1e-3;
  double damping_up = 2.0;        // multiplier on rejected steps
  double damping_down = 3.0;      // divisor on accepted steps
  double gradient_tolerance = 1e-12;
  double step_tolerance = 1e-12;
  int max_iterations = 200;
  double fd_step = 1e-7;          // relative forward-difference step
};

struct LevMarResult {
  std::vector<double> x;
  double chi_squared = 0.0;       // final Σ residual²
  int iterations = 0;
  bool converged = false;
};

/// Minimizes Σ_i r_i(x)² where `residuals(x)` returns the residual vector
/// (fixed length across calls).  Residual functions may throw
/// palu::InvalidArgument for out-of-domain x during line search; such steps
/// are treated as rejected.
LevMarResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>&
        residuals,
    std::vector<double> x0, const LevMarOptions& opts = {});

}  // namespace palu::fit
