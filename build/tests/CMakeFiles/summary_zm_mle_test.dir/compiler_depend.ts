# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for summary_zm_mle_test.
