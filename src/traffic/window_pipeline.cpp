#include "palu/traffic/window_pipeline.hpp"

#include <algorithm>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/parallel/parallel_for.hpp"

namespace palu::traffic {

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool) {
  PALU_CHECK(num_windows >= 1, "sweep_windows: need at least one window");
  PALU_CHECK(n_valid >= 1, "sweep_windows: need at least one packet");

  std::vector<stats::DegreeHistogram> histograms(num_windows);
  const Rng base(seed);
  // One shared traffic matrix: every window sees the same long-term
  // per-edge rates; only the packet draws differ between windows.
  const std::vector<double> shared_rates =
      make_edge_rates(underlying, rates, base.fork(0));
  parallel_for(pool, 0, num_windows, /*grain=*/1, [&](IndexRange range) {
    for (std::size_t t = range.begin; t < range.end; ++t) {
      SyntheticTrafficGenerator stream(underlying, shared_rates,
                                       base.fork(t + 1));
      histograms[t] = quantity_histogram(stream.window(n_valid), quantity);
    }
  });

  WindowSweepResult out;
  out.windows = num_windows;
  for (const auto& h : histograms) {
    out.max_value = std::max(out.max_value, h.max_degree());
    out.ensemble.add(stats::LogBinned::from_histogram(h));
    out.merged.merge(h);
  }
  return out;
}

}  // namespace palu::traffic
