# Empty compiler generated dependencies file for bench_table1_aggregates.
# This may be replaced when dependencies are built.
