// The obs subsystem's only timing TU: both steady_clock reads of every
// TraceSpan live here, and this file is listed in tools/timing_files.txt
// so palu_lint's determinism rule stays on for the rest of the tree.
#include "palu/obs/span.hpp"

#include <chrono>

#include "palu/obs/metrics.hpp"

namespace palu::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSpan::TraceSpan(Histogram& sink) noexcept
    : histogram_(&sink), start_ns_(now_ns()) {}

TraceSpan::TraceSpan(std::uint64_t& accumulator_ns) noexcept
    : accumulator_(&accumulator_ns), start_ns_(now_ns()) {}

std::uint64_t TraceSpan::stop() noexcept {
  if (stopped_) return 0;
  stopped_ = true;
  const std::uint64_t end = now_ns();
  const std::uint64_t elapsed = end >= start_ns_ ? end - start_ns_ : 0;
  if (histogram_ != nullptr) histogram_->observe(elapsed);
  if (accumulator_ != nullptr) *accumulator_ += elapsed;
  return elapsed;
}

}  // namespace palu::obs
