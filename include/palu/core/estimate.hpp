// The Section IV-B parameter-estimation pipeline.
//
// Given an observed degree distribution, recover the simplified PALU
// constants:
//
//  (a) Fit c and α to the tail (d >= tail_min, default 10) of the degree
//      distribution by weighted log-log linear regression (Eq. 4: slope
//      −α, intercept log c).
//  (b) Form the excess e(d) = share(d) − c·d^{−α} for 2 <= d < tail_min,
//      and take the moment ratio R = Σ d·e(d) / Σ e(d).  Under the model
//      the excess is a Poisson bump u·μ^d/d! with μ = λp, so
//      R = g(μ) = μ + μ²/(e^μ − μ − 1); invert g to recover μ.  (The paper
//      labels the recovered parameter Λ; in the generative model the
//      moment ratio identifies μ = λp, with Λ = e·μ.)  This moment-ratio
//      route is the paper's "substantially less variance" estimator; the
//      point-wise alternative is provided for the ablation bench.
//  (c) u = Σ e(d) / (e^μ − 1 − μ), then l from the degree-1 mass:
//      share(1) = c + l + u·μ·(e^μ + 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/core/theory.hpp"
#include "palu/fit/bootstrap.hpp"
#include "palu/fit/robust.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

/// How step (a) extracts (c, α) from the tail.
enum class TailMethod {
  /// Discrete MLE for α on the tail (Clauset–Shalizi–Newman) plus c from
  /// tail-mass matching c·ζ(α, tail_min) = P[d >= tail_min].  Lower
  /// variance than the paper's regression: singleton counts at large d
  /// flatten a log-log regression but leave the MLE unbiased.  Default.
  kMleTailMass,
  /// The paper's literal recipe: weighted log-log linear regression with
  /// slope −α and intercept log c.  Kept for the fidelity ablation.
  kRegression,
};

struct PaluFitOptions {
  Degree tail_min = 10;       ///< Eq. (4) applies from here up
  TailMethod tail_method = TailMethod::kMleTailMass;
  bool weight_by_count = true;  ///< weight regression points by n(d)
  bool clip_negative_excess = true;  ///< drop e(d) < 0 in step (b)
  /// Upper degree bound for the excess sums.  The paper writes Σ_{d≥2},
  /// but with finite data the tiny residuals at large d are pure sampling
  /// noise that overwhelms the first moment, so the sum is restricted to
  /// the region where a Poisson bump (μ = λp ≤ 20) can actually live.
  Degree excess_max = 64;
  /// Below this excess mass the bump is treated as absent (μ, u = 0).
  double min_excess_mass = 1e-5;
  /// Moment ratios implying μ beyond this are declared unidentifiable:
  /// λ ≤ 20 and p ≤ 1 bound the true μ = λp by 20, so anything past 25 is
  /// noise masquerading as a bump.
  double mu_cap = 25.0;
  /// When the recovered μ implies the Poisson bump reaches past tail_min
  /// (bump support ~ μ + 4√μ), refit with the tail start pushed beyond it.
  /// Without this, a large-μ bump contaminates the (c, α) tail fit and
  /// biases every downstream constant.
  bool adaptive_tail = true;
};

struct PaluFit {
  double alpha = 0.0;  ///< core exponent
  double c = 0.0;      ///< core amplitude
  double mu = 0.0;     ///< μ = λp recovered from the moment ratio
  double u = 0.0;      ///< star-hub amplitude U·e^{−λp}/V
  double l = 0.0;      ///< leaf share L·p/V

  /// The paper's Λ = e·λ·p.
  double lambda_cap() const;

  // Diagnostics.
  double tail_r_squared = 0.0;   ///< goodness of the step-(a) regression
  double excess_mass = 0.0;      ///< Σ e(d) used in (b)/(c)
  double moment_ratio = 0.0;     ///< R fed into g^{-1}
  std::size_t tail_points = 0;   ///< support points in the (a) regression
  bool mu_identifiable = true;   ///< false when R <= 2 forced μ = 0

  /// Model prediction share(d) implied by the fit (Poisson star bump).
  double predicted_share(Degree d) const;

  /// The star contribution to share(1): u·μ·(e^μ + 1).
  double predicted_star_degree_one() const;
};

/// Runs (a)–(c) on an observed degree distribution.  Throws
/// palu::DataError when the tail has too few support points to regress.
PaluFit fit_palu(const stats::EmpiricalDistribution& dist,
                 const PaluFitOptions& opts = {});

/// Convenience overload from a histogram.
PaluFit fit_palu(const stats::DegreeHistogram& h,
                 const PaluFitOptions& opts = {});

/// Bootstrap confidence intervals for the five fitted constants
/// (α, c, μ, u, l in that order), from a single resampling pass.
struct PaluFitCi {
  fit::BootstrapResult alpha, c, mu, u, l;
};
PaluFitCi bootstrap_palu_fit(const stats::DegreeHistogram& h, Rng& rng,
                             ThreadPool& pool,
                             const fit::BootstrapOptions& boot_opts = {},
                             const PaluFitOptions& fit_opts = {});

/// Joint polish: starting from a IV-B pipeline fit, refines
/// (α, c, μ, u, l) together by Levenberg–Marquardt on the weighted
/// residuals between predicted_share(d) and the empirical pmf over
/// d = 1..refine_max (weights √n(d), i.e. Poisson-ish).  Typically
/// shaves the remaining bias of the staged pipeline; falls back to the
/// input fit if LM cannot improve it.
PaluFit refine_palu_fit(const stats::EmpiricalDistribution& dist,
                        const PaluFit& initial, Degree refine_max = 256);

/// Degraded-mode estimation: a PaluFit tagged with the optimizer stage
/// that produced it (see fit::RobustStage) plus per-stage diagnostics.
struct RobustPaluFit {
  PaluFit fit;
  fit::RobustStage stage = fit::RobustStage::kFailed;
  std::vector<fit::StageDiagnostic> diagnostics;
  std::string error;  ///< why everything failed, when stage == kFailed
  /// True when the staged moment pipeline failed on this window and the
  /// caller-supplied warm-start parameters served as the base fit instead
  /// (warm overloads only) — a lower-provenance result worth surfacing.
  bool warm_base = false;

  bool ok() const noexcept { return stage != fit::RobustStage::kFailed; }
};

/// Resilient driver around the IV-B pipeline: the staged moment pipeline
/// supplies the closed-form base fit (retried with relaxed tail starts on
/// thin data), then fit::robust chains the LM polish and a Nelder–Mead
/// rescue on top with bounded jittered restarts.  Degradation order:
/// kLevMar (polished) → kNelderMead → kMoments (staged pipeline as-is).
/// Never throws for bad data — a window the pipeline cannot fit at all
/// comes back with stage == kFailed and the reason in `error`, so a
/// multi-window sweep keeps its remaining windows.
RobustPaluFit robust_fit_palu(
    const stats::EmpiricalDistribution& dist,
    const PaluFitOptions& fit_opts = {},
    const fit::RobustFitOptions& robust_opts = {},
    Degree refine_max = 256);

/// Convenience overload from a histogram.
RobustPaluFit robust_fit_palu(
    const stats::DegreeHistogram& h, const PaluFitOptions& fit_opts = {},
    const fit::RobustFitOptions& robust_opts = {},
    Degree refine_max = 256);

/// Warm-started variant for streaming refits: the LM → Nelder–Mead ladder
/// starts from `warm` (the previous window's parameters) instead of the
/// staged pipeline's estimate, and when the staged pipeline fails outright
/// on a pathological window, `warm` itself serves as the base fit
/// (result tagged `warm_base`), so a window the cold pipeline cannot fit
/// still yields usable parameters.  Identical to robust_fit_palu when the
/// warm start neither helps nor is needed as a base.
RobustPaluFit robust_fit_palu_warm(
    const stats::EmpiricalDistribution& dist, const PaluFit& warm,
    const PaluFitOptions& fit_opts = {},
    const fit::RobustFitOptions& robust_opts = {},
    Degree refine_max = 256);

/// Convenience overload from a histogram.
RobustPaluFit robust_fit_palu_warm(
    const stats::DegreeHistogram& h, const PaluFit& warm,
    const PaluFitOptions& fit_opts = {},
    const fit::RobustFitOptions& robust_opts = {},
    Degree refine_max = 256);

/// Ablation twin of step (b): estimates μ by point-wise matching of
/// consecutive excess ratios e(d+1)/e(d) = μ/(d+1) instead of the moment
/// ratio — the higher-variance route the paper advises against.  Returns
/// the count-weighted median of the point-wise estimates.
double estimate_mu_pointwise(const stats::EmpiricalDistribution& dist,
                             double c, double alpha,
                             const PaluFitOptions& opts = {});

}  // namespace palu::core
