file(REMOVE_RECURSE
  "CMakeFiles/core_generator_test.dir/core_generator_test.cpp.o"
  "CMakeFiles/core_generator_test.dir/core_generator_test.cpp.o.d"
  "core_generator_test"
  "core_generator_test.pdb"
  "core_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
