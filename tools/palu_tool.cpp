// palu_tool — the command-line front door to the library.
//
// Subcommands:
//   generate  --nodes N --lambda L --core C --leaves F --alpha A
//             --window P --packets K [--seed S]
//       Realizes a PALU network, streams K packets over it, writes a
//       trace to stdout.
//   analyze   --trace FILE --nvalid N [--csv]
//       Windows a trace, fits the modified Zipf–Mandelbrot model and the
//       PALU constants, ranks the model zoo; --csv switches to CSV output.
//   census    --trace FILE --nvalid N
//       Prints the Fig-2 topology census of each window.
//   help
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "palu/cli/args.hpp"
#include "palu/palu.hpp"

namespace {

using namespace palu;

int cmd_generate(const cli::Args& args) {
  const auto params = core::PaluParams::solve_hubs(
      args.get_double("lambda", 3.0), args.get_double("core", 0.4),
      args.get_double("leaves", 0.25), args.get_double("alpha", 2.1),
      args.get_double("window", 1.0));
  const auto nodes =
      static_cast<NodeId>(args.get_int("nodes", 50000));
  const auto packets =
      static_cast<Count>(args.get_int("packets", 200000));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto net = core::generate_underlying(params, nodes, rng);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  traffic::SyntheticTrafficGenerator stream(net.graph, rates, rng.fork(1));
  std::vector<traffic::Packet> out;
  out.reserve(packets);
  for (Count i = 0; i < packets; ++i) out.push_back(stream.next());
  io::write_trace(std::cout, out);
  return 0;
}

// Shared ingest knobs: --on-error=strict|skip|repair, --max-bad-lines N.
IngestOptions ingest_options(const cli::Args& args) {
  IngestOptions opts;
  opts.policy = parse_error_policy(args.get_string("on-error", "strict"));
  const std::int64_t budget = args.get_int("max-bad-lines", -1);
  if (budget >= 0) opts.max_bad_lines = static_cast<std::size_t>(budget);
  return opts;
}

// Ingest accounting goes to stderr so piped CSV output stays clean.
void report_ingest(const char* what, const IngestReport& report) {
  if (!report.clean()) {
    std::fprintf(stderr, "%s ingest: %s\n", what,
                 report.summary().c_str());
  }
}

std::vector<traffic::Packet> load_trace(const cli::Args& args) {
  const std::string path = args.get_string("trace", "");
  PALU_CHECK(!path.empty(), "missing --trace FILE");
  const IngestOptions opts = ingest_options(args);
  io::TraceReadResult result;
  if (path == "-") {
    result = io::read_trace(std::cin, opts);
  } else {
    std::ifstream in(path);
    PALU_CHECK(static_cast<bool>(in), "cannot open trace file: " + path);
    result = io::read_trace(in, opts);
  }
  report_ingest("trace", result.report);
  return std::move(result.packets);
}

int cmd_analyze(const cli::Args& args) {
  const auto packets = load_trace(args);
  const auto n_valid =
      static_cast<Count>(args.get_int("nvalid", 50000));
  PALU_CHECK(packets.size() >= n_valid,
             "trace smaller than one window");
  stats::BinnedEnsemble ensemble;
  stats::DegreeHistogram merged;
  Degree dmax = 0;
  const std::size_t windows = packets.size() / n_valid;
  for (std::size_t t = 0; t < windows; ++t) {
    const std::span<const traffic::Packet> slice(
        packets.data() + t * n_valid, n_valid);
    const auto h = traffic::undirected_degree_histogram(
        traffic::SparseCountMatrix::from_packets(slice));
    dmax = std::max(dmax, h.max_degree());
    ensemble.add(stats::LogBinned::from_histogram(h));
    merged.merge(h);
  }
  fit::ZmFitOptions opts;
  opts.bin_sigma = ensemble.stddev();
  const auto zm = fit::fit_zipf_mandelbrot(
      stats::LogBinned(ensemble.mean()), dmax, opts);
  const auto robust = core::robust_fit_palu(merged);
  if (!robust.ok()) {
    throw ConvergenceError("analyze: PALU fit failed on every stage: " +
                           robust.error);
  }
  const auto& palu_fit = robust.fit;
  const auto ranking = fit::fit_all_models(merged);
  if (args.get_flag("csv")) {
    io::write_pooled_csv(std::cout, stats::LogBinned(ensemble.mean()),
                         ensemble.stddev());
    io::write_model_comparison_csv(std::cout, ranking);
    return 0;
  }
  std::printf("windows=%zu n_valid=%llu d_max=%llu\n", windows,
              static_cast<unsigned long long>(n_valid),
              static_cast<unsigned long long>(dmax));
  std::printf("zipf-mandelbrot: alpha=%.4f delta=%+.4f\n", zm.alpha,
              zm.delta);
  std::printf("palu constants:  alpha=%.4f c=%.5f mu=%.4f u=%.6f "
              "l=%.5f  [stage=%s]\n",
              palu_fit.alpha, palu_fit.c, palu_fit.mu, palu_fit.u,
              palu_fit.l,
              std::string(fit::to_string(robust.stage)).c_str());
  std::printf("model ranking:\n");
  for (const auto& entry : ranking) {
    std::printf("  %-18s dAIC=%10.1f\n", entry.family.c_str(),
                entry.delta_aic);
  }
  return 0;
}

traffic::Quantity parse_quantity(const std::string& name) {
  static constexpr std::array<traffic::Quantity, 6> kQuantities = {
      traffic::Quantity::kSourcePackets,
      traffic::Quantity::kSourceFanOut,
      traffic::Quantity::kLinkPackets,
      traffic::Quantity::kDestinationFanIn,
      traffic::Quantity::kDestinationPackets,
      traffic::Quantity::kUndirectedDegree};
  for (const auto q : kQuantities) {
    if (name == traffic::quantity_name(q)) return q;
  }
  throw InvalidArgument("unknown --quantity '" + name +
                        "' (see `palu_tool help`)");
}

int cmd_sweep(const cli::Args& args) {
  // Monte-Carlo window sweep over a synthetic PALU network: the paper's
  // core experiment, through the library's parallel sweep path.
  const auto params = core::PaluParams::solve_hubs(
      args.get_double("lambda", 3.0), args.get_double("core", 0.4),
      args.get_double("leaves", 0.25), args.get_double("alpha", 2.1),
      args.get_double("window", 1.0));
  const auto nodes = static_cast<NodeId>(args.get_int("nodes", 50000));
  const auto n_valid = static_cast<Count>(args.get_int("nvalid", 100000));
  const auto windows =
      static_cast<std::size_t>(args.get_int("windows", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto quantity =
      parse_quantity(args.get_string("quantity", "undirected_degree"));

  traffic::SweepOptions opts;
  // --fast-path off is the escape hatch back to the legacy per-window
  // SparseCountMatrix path (byte-identical output, for A/B debugging).
  const std::string fast = args.get_string("fast-path", "on");
  if (fast == "on") {
    opts.fast_path = true;
  } else if (fast == "off") {
    opts.fast_path = false;
  } else {
    throw InvalidArgument("--fast-path must be 'on' or 'off', got '" +
                          fast + "'");
  }
  // --synthesis counts switches to count-space window draws (O(edges) per
  // window; same law as the packet paths, different RNG consumption);
  // --synthesis expected drops sampling entirely and evaluates the
  // expected histogram and aggregates in closed form (--windows is then
  // ignored; --replicates R adds sampled counts windows for σ bands).
  const std::string synthesis = args.get_string("synthesis", "packet");
  if (synthesis == "counts") {
    opts.synthesis = traffic::SynthesisMode::kMultinomial;
  } else if (synthesis == "expected") {
    opts.synthesis = traffic::SynthesisMode::kExpected;
  } else if (synthesis != "packet") {
    throw InvalidArgument(
        "--synthesis must be 'packet', 'counts' or 'expected', got '" +
        synthesis + "'");
  }
  const std::int64_t replicates_arg = args.get_int("replicates", 0);
  if (replicates_arg < 0) {
    throw InvalidArgument("--replicates must be >= 0, got " +
                          std::to_string(replicates_arg));
  }
  opts.expected_replicates = static_cast<std::size_t>(replicates_arg);
  if (opts.expected_replicates > 0 &&
      opts.synthesis != traffic::SynthesisMode::kExpected) {
    throw InvalidArgument("--replicates needs --synthesis expected");
  }
  // --shards K > 1 turns on intra-window sharding: each window's
  // accumulation is partitioned by node-id range across K mergeable
  // sub-accumulators.  Byte-identical to --shards 1 for the same seed.
  const std::int64_t shards_arg = args.get_int("shards", 1);
  if (shards_arg < 1) {
    throw InvalidArgument("--shards must be >= 1, got " +
                          std::to_string(shards_arg));
  }
  opts.shards_per_window = static_cast<std::size_t>(shards_arg);
  if (opts.shards_per_window > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
  }

  Rng rng(seed);
  const auto net = core::generate_underlying(params, nodes, rng);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  ThreadPool pool;
  const auto sweep =
      traffic::sweep_windows(net.graph, rates, n_valid, windows, quantity,
                             seed, pool, opts);
  if (args.get_flag("csv")) {
    io::write_pooled_csv(std::cout, stats::LogBinned(sweep.ensemble.mean()),
                         sweep.ensemble.stddev());
    return 0;
  }
  const char* path_name =
      opts.synthesis == traffic::SynthesisMode::kExpected ? "expected"
      : opts.synthesis == traffic::SynthesisMode::kMultinomial
          ? "counts"
          : (opts.fast_path || opts.shards_per_window > 1 ? "fast"
                                                          : "legacy");
  std::printf("sweep: %zu/%zu windows, quantity=%s, path=%s, shards=%zu\n",
              sweep.windows,
              opts.synthesis == traffic::SynthesisMode::kExpected ? 1
                                                                  : windows,
              std::string(traffic::quantity_name(quantity)).c_str(),
              path_name, opts.shards_per_window);
  if (sweep.expected) {
    const auto& agg = sweep.expected->aggregates;
    std::printf("d_max(median)=%llu visible_entities=%.1f\n",
                static_cast<unsigned long long>(sweep.max_value),
                sweep.expected->visible_entities);
    std::printf("expected aggregates: valid_packets=%.0f unique_links=%.1f "
                "unique_sources=%.1f unique_destinations=%.1f "
                "max_link_packets=%.0f\n",
                agg.valid_packets, agg.unique_links, agg.unique_sources,
                agg.unique_destinations, agg.max_link_packets);
  } else {
    std::printf("d_max=%llu merged_total=%llu support=%zu\n",
                static_cast<unsigned long long>(sweep.max_value),
                static_cast<unsigned long long>(sweep.merged.total()),
                sweep.merged.support_size());
  }
  std::printf("stage cpu (summed over workers): sampling=%.1fms "
              "accumulation=%.1fms binning=%.1fms\n",
              static_cast<double>(sweep.timings.sampling_cpu_ns) / 1e6,
              static_cast<double>(sweep.timings.accumulation_cpu_ns) / 1e6,
              static_cast<double>(sweep.timings.binning_cpu_ns) / 1e6);
  std::printf("stage max (slowest worker):      sampling=%.1fms "
              "accumulation=%.1fms binning=%.1fms\n",
              static_cast<double>(sweep.timings.sampling_max_ns) / 1e6,
              static_cast<double>(sweep.timings.accumulation_max_ns) / 1e6,
              static_cast<double>(sweep.timings.binning_max_ns) / 1e6);
  // Fit the PALU constants on the merged sweep so one `sweep --metrics`
  // run exercises — and exports — the whole instrumented pipeline.  The
  // expected path has no merged integer histogram to fit.
  if (sweep.merged.total() == 0) return 0;
  const auto robust = core::robust_fit_palu(sweep.merged);
  if (robust.ok()) {
    std::printf("palu constants: alpha=%.4f c=%.5f mu=%.4f u=%.6f "
                "l=%.5f  [stage=%s]\n",
                robust.fit.alpha, robust.fit.c, robust.fit.mu,
                robust.fit.u, robust.fit.l,
                std::string(fit::to_string(robust.stage)).c_str());
  } else {
    std::printf("palu constants: (fit failed on every stage: %s)\n",
                robust.error.c_str());
  }
  return 0;
}

// Shared by sweep-style commands: --shards K (>= 1) with intra-window
// sharding turned on for K > 1.
std::size_t parse_shards(const cli::Args& args, traffic::SweepOptions& opts) {
  const std::int64_t shards_arg = args.get_int("shards", 1);
  if (shards_arg < 1) {
    throw InvalidArgument("--shards must be >= 1, got " +
                          std::to_string(shards_arg));
  }
  opts.shards_per_window = static_cast<std::size_t>(shards_arg);
  if (opts.shards_per_window > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
  }
  return opts.shards_per_window;
}

void print_store_stats(const char* what, const std::string& dir,
                       const store::WindowStoreWriter::Stats& stats) {
  const double per_record =
      stats.records > 0
          ? static_cast<double>(stats.payload_bytes) /
                static_cast<double>(stats.records)
          : 0.0;
  std::printf("%s: %llu windows -> %s\n", what,
              static_cast<unsigned long long>(stats.blocks), dir.c_str());
  std::printf("store: records=%llu payload=%llu B file=%llu B "
              "(%.2f payload bytes/record)\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.payload_bytes),
              static_cast<unsigned long long>(stats.file_bytes), per_record);
}

int cmd_capture(const cli::Args& args) {
  const std::string dir = args.get_string("store", "");
  PALU_CHECK(!dir.empty(), "missing --store DIR");
  if (!args.get_string("trace", "").empty()) {
    // Trace mode: window a recorded trace and archive each window's pair
    // counts.  The node domain is inferred from the trace (max id + 1) so
    // sharded replay partitions the real id range.
    const auto packets = load_trace(args);
    const auto n_valid =
        static_cast<Count>(args.get_int("nvalid", 50000));
    PALU_CHECK(packets.size() >= n_valid, "trace smaller than one window");
    NodeId domain = 1;
    for (const auto& p : packets) {
      domain = std::max(domain, std::max(p.src, p.dst) + 1);
    }
    store::WriterOptions wopts;
    wopts.node_domain = domain;
    store::WindowStoreWriter writer(dir, wopts);
    traffic::WindowAccumulator acc;
    std::vector<traffic::EdgePacketCounts> records;
    const std::size_t windows = packets.size() / n_valid;
    for (std::size_t t = 0; t < windows; ++t) {
      acc.begin_window();
      acc.add_packets(
          std::span<const traffic::Packet>(packets.data() + t * n_valid,
                                           n_valid));
      records.clear();
      acc.export_counts(records);
      writer.append(t, n_valid, records);
    }
    writer.finish();
    print_store_stats("capture", dir, writer.stats());
    return 0;
  }
  // Synthesis mode: the sweep's network/window knobs, teed into the store
  // while the sweep runs.  Replaying the store later reproduces this
  // exact ensemble without a graph, rates, or RNG.
  const auto params = core::PaluParams::solve_hubs(
      args.get_double("lambda", 3.0), args.get_double("core", 0.4),
      args.get_double("leaves", 0.25), args.get_double("alpha", 2.1),
      args.get_double("window", 1.0));
  const auto nodes = static_cast<NodeId>(args.get_int("nodes", 50000));
  const auto n_valid = static_cast<Count>(args.get_int("nvalid", 100000));
  const auto windows =
      static_cast<std::size_t>(args.get_int("windows", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto quantity =
      parse_quantity(args.get_string("quantity", "undirected_degree"));
  traffic::SweepOptions opts;
  const std::string synthesis = args.get_string("synthesis", "counts");
  if (synthesis == "counts") {
    opts.synthesis = traffic::SynthesisMode::kMultinomial;
  } else if (synthesis != "packet") {
    throw InvalidArgument(
        "capture --synthesis must be 'packet' or 'counts', got '" +
        synthesis + "'");
  }
  parse_shards(args, opts);
  Rng rng(seed);
  const auto net = core::generate_underlying(params, nodes, rng);
  store::WriterOptions wopts;
  // The realized network can round up past the requested node count, and
  // replay shard routing partitions the store's domain — record what the
  // sweep actually ran over.
  wopts.node_domain = net.graph.num_nodes();
  wopts.seed = seed;
  store::WindowStoreWriter writer(dir, wopts);
  opts.capture = &writer;
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  ThreadPool pool;
  const auto sweep =
      traffic::sweep_windows(net.graph, rates, n_valid, windows, quantity,
                             seed, pool, opts);
  writer.finish();
  print_store_stats("capture", dir, writer.stats());
  std::printf("sweep: %zu windows, quantity=%s, d_max=%llu "
              "merged_total=%llu\n",
              sweep.windows,
              std::string(traffic::quantity_name(quantity)).c_str(),
              static_cast<unsigned long long>(sweep.max_value),
              static_cast<unsigned long long>(sweep.merged.total()));
  return 0;
}

int cmd_replay(const cli::Args& args) {
  const std::string dir = args.get_string("store", "");
  PALU_CHECK(!dir.empty(), "missing --store DIR");
  store::WindowStoreReader reader(dir, ingest_options(args));
  report_ingest("store", reader.open_report());
  if (args.get_flag("verify")) {
    // Decode every stored window (checksums and payload structure are
    // verified on each read) without running the sweep.
    std::vector<std::byte> buf;
    std::vector<traffic::EdgePacketCounts> records;
    std::uint64_t total_records = 0;
    std::uint64_t total_packets = 0;
    std::uint64_t total_bytes = 0;
    for (std::size_t t = 0; t < reader.num_windows(); ++t) {
      total_packets += reader.read_window(t, buf, records);
      total_records += records.size();
    }
    for (const auto& m : reader.manifest()) total_bytes += m.block_bytes;
    std::printf("verify: %s: OK (%zu windows, records=%llu "
                "valid_packets=%llu block_bytes=%llu node_domain=%llu "
                "seed=%llu)\n",
                dir.c_str(), reader.num_windows(),
                static_cast<unsigned long long>(total_records),
                static_cast<unsigned long long>(total_packets),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(reader.header().node_domain),
                static_cast<unsigned long long>(reader.header().seed));
    return 0;
  }
  const std::int64_t windows_arg = args.get_int("windows", 0);
  if (windows_arg < 0) {
    throw InvalidArgument("--windows must be >= 0, got " +
                          std::to_string(windows_arg));
  }
  std::size_t windows = static_cast<std::size_t>(windows_arg);
  if (windows == 0) windows = reader.num_windows();
  PALU_CHECK(windows <= reader.num_windows(),
             "--windows " + std::to_string(windows) +
                 " exceeds the store's " +
                 std::to_string(reader.num_windows()) + " windows");
  const auto quantity =
      parse_quantity(args.get_string("quantity", "undirected_degree"));
  traffic::SweepOptions opts;
  const std::size_t shards = parse_shards(args, opts);
  ThreadPool pool;
  const auto sweep =
      traffic::sweep_windows(reader, windows, quantity, pool, opts);
  if (args.get_flag("csv")) {
    io::write_pooled_csv(std::cout, stats::LogBinned(sweep.ensemble.mean()),
                         sweep.ensemble.stddev());
    return 0;
  }
  std::printf("replay: %zu/%zu stored windows, quantity=%s, path=replay, "
              "shards=%zu\n",
              sweep.windows, reader.num_windows(),
              std::string(traffic::quantity_name(quantity)).c_str(), shards);
  std::printf("d_max=%llu merged_total=%llu support=%zu\n",
              static_cast<unsigned long long>(sweep.max_value),
              static_cast<unsigned long long>(sweep.merged.total()),
              sweep.merged.support_size());
  std::printf("stage cpu (summed over workers): read=%.1fms "
              "accumulation=%.1fms binning=%.1fms\n",
              static_cast<double>(sweep.timings.sampling_cpu_ns) / 1e6,
              static_cast<double>(sweep.timings.accumulation_cpu_ns) / 1e6,
              static_cast<double>(sweep.timings.binning_cpu_ns) / 1e6);
  if (sweep.merged.total() == 0) return 0;
  const auto robust = core::robust_fit_palu(sweep.merged);
  if (robust.ok()) {
    std::printf("palu constants: alpha=%.4f c=%.5f mu=%.4f u=%.6f "
                "l=%.5f  [stage=%s]\n",
                robust.fit.alpha, robust.fit.c, robust.fit.mu,
                robust.fit.u, robust.fit.l,
                std::string(fit::to_string(robust.stage)).c_str());
  } else {
    std::printf("palu constants: (fit failed on every stage: %s)\n",
                robust.error.c_str());
  }
  return 0;
}

int cmd_check_metrics(const cli::Args& args) {
  // Round-trips a Prometheus exposition file through the strict format
  // validator; CI uses this to pin the exporter's output format.
  const std::string path = args.get_string("prom", "");
  PALU_CHECK(!path.empty(), "missing --prom FILE");
  std::ifstream in(path);
  PALU_CHECK(static_cast<bool>(in), "cannot open metrics file: " + path);
  const auto violations = obs::validate_prometheus(in);
  if (violations.empty()) {
    std::printf("check-metrics: %s: OK\n", path.c_str());
    return 0;
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "check-metrics: %s: %s\n", path.c_str(),
                 v.c_str());
  }
  throw DataError("check-metrics: " + path + ": " +
                  std::to_string(violations.size()) +
                  " format violation(s)");
}

// --metrics FILE: export the default registry after the command ran —
// JSON at FILE, Prometheus text alongside it at FILE with the extension
// replaced by '.prom'.
std::string prom_path_for(const std::string& json_path) {
  const std::size_t slash = json_path.find_last_of('/');
  const std::size_t dot = json_path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return json_path + ".prom";
  }
  return json_path.substr(0, dot) + ".prom";
}

void export_metrics(const std::string& json_path) {
  const auto snap = obs::default_registry().snapshot();
  {
    std::ofstream out(json_path);
    PALU_CHECK(static_cast<bool>(out),
               "cannot write metrics file: " + json_path);
    obs::write_json(out, snap);
  }
  const std::string prom = prom_path_for(json_path);
  std::ofstream out(prom);
  PALU_CHECK(static_cast<bool>(out), "cannot write metrics file: " + prom);
  obs::write_prometheus(out, snap);
  // stderr: commands like `generate` stream their payload on stdout.
  std::fprintf(stderr, "wrote metrics: %s + %s\n", json_path.c_str(),
               prom.c_str());
}

int cmd_census(const cli::Args& args) {
  const auto packets = load_trace(args);
  const auto n_valid =
      static_cast<Count>(args.get_int("nvalid", 50000));
  PALU_CHECK(packets.size() >= n_valid,
             "trace smaller than one window");
  const std::size_t windows = packets.size() / n_valid;
  std::printf("window  links  un.links  stars  core.comps  largest\n");
  for (std::size_t t = 0; t < windows; ++t) {
    const std::span<const traffic::Packet> slice(
        packets.data() + t * n_valid, n_valid);
    const auto window = traffic::SparseCountMatrix::from_packets(slice);
    const auto census =
        graph::classify_topology(traffic::window_to_graph(window));
    std::printf("%6zu %6zu %9llu %6llu %11llu %8llu\n", t,
                window.nnz(),
                static_cast<unsigned long long>(census.unattached_links),
                static_cast<unsigned long long>(census.star_components),
                static_cast<unsigned long long>(census.core_components),
                static_cast<unsigned long long>(census.largest_component));
  }
  return 0;
}

int cmd_graph_census(const cli::Args& args) {
  const std::string path = args.get_string("graph", "");
  PALU_CHECK(!path.empty(), "missing --graph FILE");
  const IngestOptions opts = ingest_options(args);
  io::EdgeListReadResult result;
  if (path == "-") {
    result = io::read_edge_list(std::cin, opts);
  } else {
    std::ifstream in(path);
    PALU_CHECK(static_cast<bool>(in), "cannot open graph file: " + path);
    result = io::read_edge_list(in, opts);
  }
  report_ingest("edge-list", result.report);
  const graph::Graph& g = result.graph;
  const auto census = graph::classify_topology(g);
  const auto clustering = graph::clustering_summary(g);
  const auto core = graph::k_core_numbers(g);
  Degree kmax = 0;
  for (const Degree c : core) kmax = std::max(kmax, c);
  std::printf("nodes=%llu edges=%zu\n",
              static_cast<unsigned long long>(g.num_nodes()),
              g.num_edges());
  std::printf("isolated=%llu unattached_links=%llu stars=%llu "
              "core_components=%llu largest=%llu\n",
              static_cast<unsigned long long>(census.isolated_nodes),
              static_cast<unsigned long long>(census.unattached_links),
              static_cast<unsigned long long>(census.star_components),
              static_cast<unsigned long long>(census.core_components),
              static_cast<unsigned long long>(census.largest_component));
  std::printf("clustering: avg_local=%.5f global=%.5f triangles=%llu\n",
              clustering.average_local, clustering.global,
              static_cast<unsigned long long>(clustering.triangles));
  std::printf("assortativity=%+.4f max_core=%llu\n",
              graph::degree_assortativity(g),
              static_cast<unsigned long long>(kmax));
  // Degree-law fit, when the graph is big enough to support one.
  try {
    const auto h = stats::DegreeHistogram::from_degrees(g.degrees());
    const auto palu_fit = core::fit_palu(h);
    std::printf("palu fit: alpha=%.4f c=%.5f mu=%.4f u=%.6f l=%.5f\n",
                palu_fit.alpha, palu_fit.c, palu_fit.mu, palu_fit.u,
                palu_fit.l);
  } catch (const palu::DataError&) {
    std::printf("palu fit: (degree support too thin to fit)\n");
  }
  return 0;
}

int cmd_zoo(const cli::Args& args) {
  // Model ranking over a degree histogram in d,count CSV form — the entry
  // point for public degree datasets.
  const std::string path = args.get_string("histogram", "");
  PALU_CHECK(!path.empty(), "missing --histogram FILE");
  const IngestOptions opts = ingest_options(args);
  io::HistogramReadResult result;
  if (path == "-") {
    result = io::read_histogram_csv(std::cin, opts);
  } else {
    std::ifstream in(path);
    PALU_CHECK(static_cast<bool>(in),
               "cannot open histogram file: " + path);
    result = io::read_histogram_csv(in, opts);
  }
  report_ingest("histogram", result.report);
  const stats::DegreeHistogram& h = result.histogram;
  const auto ranking = fit::fit_all_models(h);
  if (args.get_flag("csv")) {
    io::write_model_comparison_csv(std::cout, ranking);
    return 0;
  }
  std::printf("%-18s %14s %10s  params\n", "family", "AIC", "dAIC");
  for (const auto& entry : ranking) {
    std::printf("%-18s %14.1f %10.1f  ", entry.family.c_str(), entry.aic,
                entry.delta_aic);
    for (const auto& [name, value] : entry.parameters) {
      std::printf("%s=%.4g ", name.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_serve(const cli::Args& args) {
  // Count flags are parsed signed; a negative would wrap to a huge
  // unsigned (e.g. --window -1 -> 2^64-1) and sail past every later
  // bound, so validate before any cast.
  const auto get_count = [&args](const char* name, std::int64_t fallback,
                                 std::int64_t min_value) {
    const std::int64_t v = args.get_int(name, fallback);
    PALU_CHECK(v >= min_value, "--" + std::string(name) +
                                   " must be >= " +
                                   std::to_string(min_value) + ", got " +
                                   std::to_string(v));
    return static_cast<std::uint64_t>(v);
  };
  serve::ServeOptions opts;
  opts.input_path = args.get_string("trace", "-");
  opts.follow = args.get_flag("follow");
  opts.ingest = ingest_options(args);
  opts.window_packets = get_count("window", 100000, 1);
  opts.quantity =
      parse_quantity(args.get_string("quantity", "undirected_degree"));
  opts.streaming.sliding_horizon =
      static_cast<std::size_t>(get_count("horizon", 4, 1));
  opts.streaming.warm_start =
      args.get_string("warm-start", "on") != "off";
  opts.max_windows = get_count("max-windows", 0, 0);
  opts.fit_deadline_ms = args.get_double("fit-deadline-ms", 0.0);
  opts.queue_capacity = static_cast<std::size_t>(get_count("queue", 65536, 1));
  opts.backpressure =
      serve::parse_backpressure(args.get_string("backpressure", "block"));
  opts.checkpoint_path = args.get_string("checkpoint", "");
  opts.checkpoint_every = get_count("checkpoint-every", 1, 1);
  opts.restore = args.get_flag("restore");
  opts.snapshot_path = args.get_string("snapshot", "");
  opts.snapshot_interval_ms =
      args.get_double("snapshot-interval-ms", 1000.0);
  opts.max_stage_restarts = get_count("max-restarts", 5, 0);
  opts.drain_deadline_ms = args.get_double("drain-deadline-ms", 5000.0);
  opts.poll_interval_ms = args.get_double("poll-interval-ms", 50.0);
  opts.record_path = args.get_string("record", "");
  PALU_CHECK(!(opts.restore && opts.checkpoint_path.empty()),
             "--restore needs --checkpoint FILE");
  // The snapshot families should be complete from the first interval, not
  // fill in as layers get exercised.
  palu::obs::preregister_palu_metrics(palu::obs::default_registry());
  serve::ServeDaemon daemon(std::move(opts));
  return daemon.run();
}

int print_help() {
  std::printf(
      "palu_tool <command> [options]\n"
      "  generate --nodes N --lambda L --core C --leaves F --alpha A\n"
      "           --window P --packets K [--seed S]   write a trace\n"
      "  sweep    --windows W --nvalid N [--quantity Q] [--seed S]\n"
      "           [--fast-path on|off]\n"
      "           [--synthesis packet|counts|expected]\n"
      "           [--replicates R]\n"
      "           [--shards K] [--csv]                 Monte-Carlo window\n"
      "                                               sweep over a PALU\n"
      "                                               network (fast path\n"
      "                                               on by default);\n"
      "                                               --shards K>1 shards\n"
      "                                               each window by node\n"
      "                                               range across K merged\n"
      "                                               sub-accumulators\n"
      "                                               (byte-identical);\n"
      "                                               'expected' evaluates\n"
      "                                               the analytic window\n"
      "                                               (no sampling, one\n"
      "                                               deterministic pass;\n"
      "                                               --replicates R adds\n"
      "                                               sampled sigma bands)\n"
      "  capture  --store DIR [sweep options |\n"
      "           --trace FILE|- --nvalid N]           archive per-window\n"
      "                                               pair counts into a\n"
      "                                               columnar window store:\n"
      "                                               either tee a synthetic\n"
      "                                               sweep (counts synthesis\n"
      "                                               by default) or window a\n"
      "                                               recorded trace\n"
      "  replay   --store DIR [--windows W] [--quantity Q]\n"
      "           [--shards K] [--csv] [--verify]      re-run the window\n"
      "                                               sweep from a store —\n"
      "                                               no graph, rates, or\n"
      "                                               synthesis; --verify\n"
      "                                               only decodes and\n"
      "                                               checksums every block\n"
      "  analyze  --trace FILE|- --nvalid N [--csv]   fit models\n"
      "  census   --trace FILE|- --nvalid N           topology census\n"
      "  zoo      --histogram FILE|- [--csv]          rank model zoo on\n"
      "                                               d,count CSV data\n"
      "  graph-census --graph FILE|-                  census/clustering/\n"
      "                                               core depth of an\n"
      "                                               'u v' edge list\n"
      "  serve    [--trace FILE|-] [--follow] --window N\n"
      "           [--quantity Q] [--horizon K] [--warm-start on|off]\n"
      "           [--max-windows W] [--fit-deadline-ms D]\n"
      "           [--queue N] [--backpressure block|drop-oldest|drop-newest]\n"
      "           [--checkpoint FILE [--checkpoint-every K] [--restore]]\n"
      "           [--snapshot FILE [--snapshot-interval-ms MS]]\n"
      "           [--max-restarts R] [--drain-deadline-ms MS]\n"
      "           [--record DIR]\n"
      "                                               long-running streaming\n"
      "                                               estimation daemon: tails\n"
      "                                               the trace (stdin by\n"
      "                                               default), fits PALU+ZM\n"
      "                                               per N-packet window,\n"
      "                                               one result line each;\n"
      "                                               SIGINT/SIGTERM drain;\n"
      "                                               --record DIR archives\n"
      "                                               every fitted window\n"
      "                                               into a window store\n"
      "  check-metrics --prom FILE                    validate a Prometheus\n"
      "                                               exposition file\n"
      "  help\n"
      "observability (any command):\n"
      "  --metrics FILE   export the run's metrics after the command:\n"
      "                   JSON to FILE, Prometheus text to FILE with the\n"
      "                   extension replaced by .prom\n"
      "ingest options (analyze, census, zoo, graph-census, capture,\n"
      "replay — for replay the budget covers torn-tail recovery):\n"
      "  --on-error strict|skip|repair   malformed-line policy; strict\n"
      "                                  (default) aborts on the first bad\n"
      "                                  line, skip drops bad lines, repair\n"
      "                                  salvages what it can\n"
      "  --max-bad-lines N               error budget for skip/repair; the\n"
      "                                  ingest aborts once N bad lines are\n"
      "                                  exceeded (default: unlimited)\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage error, 3 data/ingest\n"
      "error, 4 estimation failed to converge\n");
  return 0;
}

}  // namespace

int dispatch(const std::string& command, const palu::cli::Args& args) {
  if (command == "generate") return cmd_generate(args);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "capture") return cmd_capture(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "census") return cmd_census(args);
  if (command == "zoo") return cmd_zoo(args);
  if (command == "graph-census") return cmd_graph_census(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "check-metrics") return cmd_check_metrics(args);
  if (command == "help") return print_help();
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  print_help();
  return 2;
}

int main(int argc, char** argv) {
  if (argc < 2) return print_help();
  const std::string command = argv[1];
  try {
    // Out-of-process fault injection: PALU_FAILPOINT="name[:fires[:skip]],…"
    // arms registered failpoints before dispatch, so CI can fault a
    // subprocess it cannot call failpoints::arm() in (the serve soak job
    // relies on this).
    if (const char* spec = std::getenv("PALU_FAILPOINT")) {
      palu::failpoints::arm_from_spec(spec);
    }
    const auto args = palu::cli::Args::parse(argc, argv, 2);
    const std::string metrics_path = args.get_string("metrics", "");
    if (!metrics_path.empty()) {
      // Preregister every family so the export is a complete catalogue
      // even for layers this command never reached.
      palu::obs::preregister_palu_metrics(palu::obs::default_registry());
    }
    const int rc = dispatch(command, args);
    if (!metrics_path.empty()) export_metrics(metrics_path);
    return rc;
  } catch (const palu::DataError& e) {
    // Malformed input or an exhausted error budget: documented exit 3 so
    // batch drivers can separate bad captures from tool bugs.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const palu::ConvergenceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const palu::InvalidArgument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const palu::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
