file(REMOVE_RECURSE
  "libpalu_core.a"
)
