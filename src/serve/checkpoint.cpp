#include "palu/serve/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/fit/robust.hpp"

namespace palu::serve {
namespace {

// v2: the counts line gained `consecutive <n>` (the estimator's
// consecutive-stale run, which the serve staleness gauge is derived
// from).  v1 files fail the magic check and fall back to the documented
// fresh-start degrade path — safer than silently resuming with a zeroed
// gauge.
constexpr char kMagic[] = "palu-serve-checkpoint v2";

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Doubles travel as C99 hexfloats: exact round trip, locale-free.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

double parse_double(std::string_view tok) {
  const std::string s(tok);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw DataError("serve checkpoint: bad double token '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64_tok(std::string_view tok) {
  const std::string s(tok);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    throw DataError("serve checkpoint: bad integer token '" + s + "'");
  }
  return v;
}

bool parse_bool_tok(std::string_view tok) {
  if (tok == "1") return true;
  if (tok == "0") return false;
  throw DataError("serve checkpoint: bad bool token '" +
                  std::string(tok) + "'");
}

fit::RobustStage parse_stage(std::string_view tok) {
  if (tok == fit::to_string(fit::RobustStage::kLevMar)) {
    return fit::RobustStage::kLevMar;
  }
  if (tok == fit::to_string(fit::RobustStage::kNelderMead)) {
    return fit::RobustStage::kNelderMead;
  }
  if (tok == fit::to_string(fit::RobustStage::kMoments)) {
    return fit::RobustStage::kMoments;
  }
  if (tok == fit::to_string(fit::RobustStage::kFailed)) {
    return fit::RobustStage::kFailed;
  }
  throw DataError("serve checkpoint: bad stage token '" +
                  std::string(tok) + "'");
}

core::FitFreshness parse_freshness(std::string_view tok) {
  if (tok == "none") return core::FitFreshness::kNone;
  if (tok == "fresh") return core::FitFreshness::kFresh;
  if (tok == "stale") return core::FitFreshness::kStale;
  throw DataError("serve checkpoint: bad freshness token '" +
                  std::string(tok) + "'");
}

void append_lane(std::string& out, const char* name,
                 const core::StreamingFitSnapshot& lane) {
  out += "lane ";
  out += name;
  out += ' ';
  out += core::to_string(lane.freshness);
  out += ' ';
  out += fit::to_string(lane.stage);
  out += lane.warm_base ? " 1 " : " 0 ";
  append_double(out, lane.fit.alpha);
  out += ' ';
  append_double(out, lane.fit.c);
  out += ' ';
  append_double(out, lane.fit.mu);
  out += ' ';
  append_double(out, lane.fit.u);
  out += ' ';
  append_double(out, lane.fit.l);
  out += ' ';
  append_double(out, lane.fit.tail_r_squared);
  out += ' ';
  append_double(out, lane.fit.excess_mass);
  out += ' ';
  append_double(out, lane.fit.moment_ratio);
  out += ' ';
  out += std::to_string(lane.fit.tail_points);
  out += lane.fit.mu_identifiable ? " 1" : " 0";
  out += lane.zm_valid ? " 1 " : " 0 ";
  append_double(out, lane.zm.alpha);
  out += ' ';
  append_double(out, lane.zm.delta);
  out += ' ';
  out += std::to_string(lane.zm.dmax);
  out += ' ';
  append_double(out, lane.zm.objective);
  out += lane.zm.converged ? " 1" : " 0";
  out += '\n';
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

core::StreamingFitSnapshot parse_lane(
    const std::vector<std::string_view>& tok) {
  if (tok.size() != 21) {
    throw DataError("serve checkpoint: malformed lane line");
  }
  core::StreamingFitSnapshot lane;
  lane.freshness = parse_freshness(tok[2]);
  lane.stage = parse_stage(tok[3]);
  lane.warm_base = parse_bool_tok(tok[4]);
  lane.fit.alpha = parse_double(tok[5]);
  lane.fit.c = parse_double(tok[6]);
  lane.fit.mu = parse_double(tok[7]);
  lane.fit.u = parse_double(tok[8]);
  lane.fit.l = parse_double(tok[9]);
  lane.fit.tail_r_squared = parse_double(tok[10]);
  lane.fit.excess_mass = parse_double(tok[11]);
  lane.fit.moment_ratio = parse_double(tok[12]);
  lane.fit.tail_points =
      static_cast<std::size_t>(parse_u64_tok(tok[13]));
  lane.fit.mu_identifiable = parse_bool_tok(tok[14]);
  lane.zm_valid = parse_bool_tok(tok[15]);
  lane.zm.alpha = parse_double(tok[16]);
  lane.zm.delta = parse_double(tok[17]);
  lane.zm.dmax = parse_u64_tok(tok[18]);
  lane.zm.objective = parse_double(tok[19]);
  lane.zm.converged = parse_bool_tok(tok[20]);
  return lane;
}

std::string render(const Checkpoint& ck) {
  std::string out;
  out += kMagic;
  out += '\n';
  out += "config window_packets " + std::to_string(ck.window_packets) +
         " quantity " + ck.quantity + " horizon " +
         std::to_string(ck.sliding_horizon) +
         (ck.warm_start ? " warm 1\n" : " warm 0\n");
  out += "input offset " + std::to_string(ck.input_offset) + " packets " +
         std::to_string(ck.packets_ingested) + " published " +
         std::to_string(ck.windows_published) + '\n';
  out += "counts windows " + std::to_string(ck.estimator.windows) +
         " stale " + std::to_string(ck.estimator.stale_windows) +
         " consecutive " +
         std::to_string(ck.estimator.consecutive_stale) + '\n';
  append_lane(out, "window", ck.estimator.window_lane);
  append_lane(out, "sliding", ck.estimator.sliding_lane);
  for (std::size_t k = 0; k < ck.estimator.horizon.size(); ++k) {
    const auto entries = ck.estimator.horizon[k].sorted();
    out += "hist " + std::to_string(k) + ' ' +
           std::to_string(entries.size());
    for (const auto& [d, c] : entries) {
      out += ' ';
      out += std::to_string(d);
      out += ':';
      out += std::to_string(c);
    }
    out += '\n';
  }
  out += "end\n";
  return out;
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& ck) {
  std::string payload = render(ck);
  char sum[32];
  std::snprintf(sum, sizeof sum, "checksum %016llx\n",
                static_cast<unsigned long long>(fnv1a(payload)));
  payload += sum;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("serve checkpoint: cannot open '" + tmp +
                "': " + std::strerror(errno));
  }
  const char* p = payload.data();
  std::size_t left = payload.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw Error("serve checkpoint: write to '" + tmp +
                  "' failed: " + std::strerror(saved));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never publish a file whose
  // bytes are still only in the page cache when the machine dies.
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw Error("serve checkpoint: fsync of '" + tmp +
                "' failed: " + std::strerror(saved));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw Error("serve checkpoint: rename to '" + path +
                "' failed: " + std::strerror(saved));
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw DataError("serve checkpoint: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  // Split off and verify the trailing checksum line.
  const std::size_t tail = content.rfind("checksum ");
  if (tail == std::string::npos || tail == 0 ||
      content[tail - 1] != '\n' || content.back() != '\n') {
    throw DataError("serve checkpoint: '" + path +
                    "' is truncated (no checksum line)");
  }
  const std::string_view payload(content.data(), tail);
  const std::string_view sum_line(content.data() + tail,
                                  content.size() - tail - 1);
  char expect[32];
  std::snprintf(expect, sizeof expect, "checksum %016llx",
                static_cast<unsigned long long>(fnv1a(payload)));
  if (sum_line != expect) {
    throw DataError("serve checkpoint: '" + path +
                    "' failed checksum verification");
  }

  Checkpoint ck;
  std::istringstream lines{std::string(payload)};
  std::string line;
  if (!std::getline(lines, line) || line != kMagic) {
    throw DataError("serve checkpoint: '" + path +
                    "' has an unknown format version");
  }
  bool have_window = false, have_sliding = false, have_end = false;
  while (std::getline(lines, line)) {
    const auto tok = split(line);
    if (tok.empty()) continue;
    if (tok[0] == "config") {
      if (tok.size() != 9 || tok[1] != "window_packets" ||
          tok[3] != "quantity" || tok[5] != "horizon" || tok[7] != "warm") {
        throw DataError("serve checkpoint: malformed config line");
      }
      ck.window_packets = parse_u64_tok(tok[2]);
      ck.quantity = std::string(tok[4]);
      ck.sliding_horizon =
          static_cast<std::size_t>(parse_u64_tok(tok[6]));
      ck.warm_start = parse_bool_tok(tok[8]);
    } else if (tok[0] == "input") {
      if (tok.size() != 7) {
        throw DataError("serve checkpoint: malformed input line");
      }
      ck.input_offset = parse_u64_tok(tok[2]);
      ck.packets_ingested = parse_u64_tok(tok[4]);
      ck.windows_published = parse_u64_tok(tok[6]);
    } else if (tok[0] == "counts") {
      if (tok.size() != 7 || tok[1] != "windows" || tok[3] != "stale" ||
          tok[5] != "consecutive") {
        throw DataError("serve checkpoint: malformed counts line");
      }
      ck.estimator.windows =
          static_cast<std::size_t>(parse_u64_tok(tok[2]));
      ck.estimator.stale_windows =
          static_cast<std::size_t>(parse_u64_tok(tok[4]));
      ck.estimator.consecutive_stale =
          static_cast<std::size_t>(parse_u64_tok(tok[6]));
    } else if (tok[0] == "lane") {
      if (tok.size() < 2) {
        throw DataError("serve checkpoint: malformed lane line");
      }
      if (tok[1] == "window") {
        ck.estimator.window_lane = parse_lane(tok);
        have_window = true;
      } else if (tok[1] == "sliding") {
        ck.estimator.sliding_lane = parse_lane(tok);
        have_sliding = true;
      } else {
        throw DataError("serve checkpoint: unknown lane '" +
                        std::string(tok[1]) + "'");
      }
    } else if (tok[0] == "hist") {
      if (tok.size() < 3) {
        throw DataError("serve checkpoint: malformed hist line");
      }
      const std::size_t n =
          static_cast<std::size_t>(parse_u64_tok(tok[2]));
      if (tok.size() != 3 + n) {
        throw DataError("serve checkpoint: hist entry count mismatch");
      }
      stats::DegreeHistogram h;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string_view pair = tok[3 + i];
        const std::size_t colon = pair.find(':');
        if (colon == std::string_view::npos) {
          throw DataError("serve checkpoint: malformed hist entry '" +
                          std::string(pair) + "'");
        }
        h.add(parse_u64_tok(pair.substr(0, colon)),
              parse_u64_tok(pair.substr(colon + 1)));
      }
      ck.estimator.horizon.push_back(std::move(h));
    } else if (tok[0] == "end") {
      have_end = true;
    } else {
      throw DataError("serve checkpoint: unknown record '" +
                      std::string(tok[0]) + "'");
    }
  }
  if (!have_window || !have_sliding || !have_end) {
    throw DataError("serve checkpoint: '" + path +
                    "' is missing required records");
  }
  return ck;
}

}  // namespace palu::serve
