# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tools/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/include/palu")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libpalu_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/parallel/libpalu_parallel.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/math/libpalu_math.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/rng/libpalu_rng.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/linalg/libpalu_linalg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/stats/libpalu_stats.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/graph/libpalu_graph.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/fit/libpalu_fit.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/traffic/libpalu_traffic.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/io/libpalu_io.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cli/libpalu_cli.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libpalu_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/tools/palu_tool")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/palu_tool")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/palu/paluTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/palu/paluTargets.cmake"
         "/root/repo/build/CMakeFiles/Export/754cfb1e19ad79b985638b1c761d6e9c/paluTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/palu/paluTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/palu/paluTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/palu" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/754cfb1e19ad79b985638b1c761d6e9c/paluTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/palu" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/754cfb1e19ad79b985638b1c761d6e9c/paluTargets-relwithdebinfo.cmake")
  endif()
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
