// Fixture: a sanctioned in-loop lookup (cold path by construction).
// palu-lint-expect-clean
#include "palu/obs/metrics.hpp"

void probe(palu::obs::Registry& registry) {
  for (int i = 0; i < 2; ++i) {
    // Startup-only probe loop; runs once per process.
    // palu-lint: allow(hot-path-registration)
    registry.counter("palu_startup_probe_total_fixture").inc();
  }
}
