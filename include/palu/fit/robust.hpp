// Degraded-mode fitting: a resilience wrapper over the optimizer stack.
//
// Fits on real traffic windows routinely fail to converge (Clegg et al.,
// "A critical look at power law modelling of the Internet"): pathological
// windows produce singular Jacobians, off-domain steps, or plain
// ConvergenceError.  robust_least_squares chains
//
//     Levenberg–Marquardt → Nelder–Mead → caller-supplied closed form
//
// with bounded, deterministically jittered restarts per stage, and returns
// a result tagged with the stage that produced it plus per-stage
// diagnostics — so a sweep keeps a (possibly lower-quality) estimate for a
// bad window instead of losing the whole run to one exception.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "palu/fit/levmar.hpp"
#include "palu/fit/nelder_mead.hpp"

namespace palu::obs {
class Registry;
}

namespace palu::fit {

/// Which rung of the fallback ladder produced the result.
enum class RobustStage {
  kLevMar,      ///< full-quality nonlinear least squares
  kNelderMead,  ///< derivative-free rescue
  kMoments,     ///< caller's closed-form / moment fallback
  kFailed,      ///< every stage failed
};

std::string_view to_string(RobustStage stage) noexcept;

/// What happened inside one stage of the ladder.
struct StageDiagnostic {
  RobustStage stage = RobustStage::kFailed;
  int attempts = 0;        ///< starts tried (1 + jittered restarts)
  int iterations = 0;      ///< optimizer iterations of the last attempt
  double objective = 0.0;  ///< best Σ r² reached in this stage
  bool succeeded = false;
  std::string error;       ///< last failure, empty when succeeded
};

struct RobustFitOptions {
  /// Starts per stage: the clean x0 plus (max_attempts_per_stage − 1)
  /// jittered restarts.
  int max_attempts_per_stage = 3;
  /// Relative perturbation of x0 on restarts, drawn from the seeded RNG so
  /// reruns are bit-identical.
  double jitter = 0.1;
  std::uint64_t seed = 0x0b0e5eedULL;
  LevMarOptions levmar;
  NelderMeadOptions nelder_mead;
  /// Metrics sink for the palu_fit_* families (per-stage attempts,
  /// successes, iteration histograms, ladder outcomes); nullptr routes to
  /// obs::default_registry().
  obs::Registry* metrics = nullptr;
};

struct RobustFitResult {
  std::vector<double> x;
  double objective = 0.0;  ///< Σ r² at x (when computable)
  RobustStage stage = RobustStage::kFailed;
  std::vector<StageDiagnostic> diagnostics;

  bool ok() const noexcept { return stage != RobustStage::kFailed; }
};

/// Minimizes Σ r²(x) with graceful degradation.  `residuals` may throw any
/// palu::Error for pathological x — throws are treated as failed attempts,
/// never propagated.  `fallback`, when provided, supplies the stage-3
/// closed-form parameter vector (e.g. moment estimators); it too may
/// throw.  The result is the FIRST stage that succeeds, so callers get the
/// highest-quality estimate available, tagged with its provenance.
RobustFitResult robust_least_squares(
    const std::function<std::vector<double>(const std::vector<double>&)>&
        residuals,
    std::vector<double> x0,
    const std::function<std::vector<double>()>& fallback = {},
    const RobustFitOptions& opts = {});

}  // namespace palu::fit
